// Package atomicmix catches the half-converted-counter race: a struct
// field updated through sync/atomic in one function but read or
// written directly in another. The atomic calls establish that the
// field is shared across goroutines; every plain access to it is then
// a data race the compiler and -race may never see on a lucky
// interleaving — exactly the metrics/faultinject fast-path class where
// a hot path does `atomic.AddInt64(&m.n, 1)` while a report path does
// `m.n++`.
//
// The pass classifies, repo-wide (cross-package via the run state),
// every access to a struct field:
//
//   - atomic: the field's address is passed to a sync/atomic function
//     (AddInt64, LoadUint32, StorePointer, CompareAndSwap..., Swap...),
//     or the field has one of the atomic.Int32/Int64/Uint32/Uint64/
//     Bool/Pointer/Value types, whose method calls are atomic by
//     construction.
//   - plain: any other read or write of the field by selector.
//
// Fields with both kinds of access are reported at each plain site,
// naming an atomic witness site. Initialization before sharing is the
// idiomatic exception — constructors (functions returning the owning
// type, conventionally New*) publish the struct only after the plain
// writes — so plain accesses inside New*/new* functions and inside
// composite literals are not counted. Deliberate unshared phases
// (tests' setup, a single-threaded reset) carry //lint:ignore
// atomicmix justifications.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the atomicmix pass.
var Analyzer = &anz.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields accessed via sync/atomic in one function and by plain " +
		"read/write in another — a data race the lucky interleavings of -race never show",
	Run:         run,
	NewRunState: func() any { return newState() },
	Finish:      finish,
}

type access struct {
	pos token.Position
	fn  string
}

type fieldAccesses struct {
	atomic []access
	plain  []access
}

type state struct {
	fields map[string]*fieldAccesses // field id -> accesses
}

func newState() *state { return &state{fields: make(map[string]*fieldAccesses)} }

func (st *state) of(id string) *fieldAccesses {
	fa := st.fields[id]
	if fa == nil {
		fa = &fieldAccesses{}
		st.fields[id] = fa
	}
	return fa
}

// atomicFuncs is the sync/atomic free-function prefix set.
var atomicPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is one of sync/atomic's typed
// wrappers, whose accesses are atomic by construction.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldID qualifies a field selection by its declaring struct:
// "npra/internal/serve.metrics.queueDepth". Non-field selections
// return "".
func fieldID(pass *anz.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return ""
	}
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path() + "."
	}
	return pkg + obj.Name() + "." + v.Name()
}

func run(pass *anz.Pass) error {
	st := pass.RunState().(*state)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			collect(pass, st, fd)
		}
	}
	return nil
}

// isConstructor exempts the publish-after-init idiom: plain writes in
// New*/new* functions happen before the struct is shared.
func isConstructor(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

func collect(pass *anz.Pass, st *state, fd *ast.FuncDecl) {
	fnName := fd.Name.Name
	constructor := isConstructor(fnName)

	// Selector expressions consumed by an atomic call (&x.f argument):
	// recorded as atomic, and excluded from the plain walk.
	atomicArgs := make(map[*ast.SelectorExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && isAtomicFunc(obj) {
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if id := fieldID(pass, fsel); id != "" {
						atomicArgs[fsel] = true
						st.of(id).atomic = append(st.of(id).atomic, access{pos: pass.Fset.Position(fsel.Pos()), fn: fnName})
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || atomicArgs[sel] {
			return true
		}
		id := fieldID(pass, sel)
		if id == "" {
			return true
		}
		if tv, ok := pass.Info.Types[sel]; ok && tv.Type != nil && isAtomicType(tv.Type) {
			// Method calls on atomic.Int64 etc. are atomic accesses;
			// recorded so a typed field mixed with... nothing: typed
			// fields cannot be accessed plainly without the methods, so
			// just record the atomic side.
			st.of(id).atomic = append(st.of(id).atomic, access{pos: pass.Fset.Position(sel.Pos()), fn: fnName})
			return true
		}
		if constructor {
			return true
		}
		st.of(id).plain = append(st.of(id).plain, access{pos: pass.Fset.Position(sel.Pos()), fn: fnName})
		return true
	})
}

func finish(s any, report func(pos token.Position, format string, args ...any)) error {
	st := s.(*state)
	ids := make([]string, 0, len(st.fields))
	for id := range st.fields {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fa := st.fields[id]
		if len(fa.atomic) == 0 || len(fa.plain) == 0 {
			continue
		}
		// Only cross-function mixes: a single function mixing both is
		// caught too, but same-function pairs where one is the &f arg
		// are already excluded above.
		witness := fa.atomic[0]
		sort.Slice(fa.plain, func(i, j int) bool { return posLess(fa.plain[i].pos, fa.plain[j].pos) })
		for _, p := range fa.plain {
			if p.fn == witness.fn && samePos(p.pos, witness.pos) {
				continue
			}
			report(p.pos, "plain access to %s, which %s accesses via sync/atomic (%s:%d): every access to a shared field must be atomic (or all guarded by one lock) — mixing the two is a data race", shortField(id), witness.fn, baseName(witness.pos.Filename), witness.pos.Line)
		}
	}
	return nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func samePos(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}

// shortField trims the import path for message readability.
func shortField(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
