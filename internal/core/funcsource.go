package core

// The function-cache seam. The engine's per-function artifacts —
// analysis (liveness/NSR/IG), bound estimation, the context-derivation
// chain and the (pr,sr)→Solution memo — depend only on the function
// body, never on which thread mix a request embeds it in. An
// AllocatorSource lets a serving layer keep those artifacts alive
// across engine invocations (internal/funccache is the process-wide
// implementation); the engine itself stays cache-agnostic: with a nil
// Config.FuncCache it builds fresh allocators exactly as before, and
// the allocation result is bit-identical either way (Solve is a pure
// function of the analysis and the budget).

import (
	"npra/internal/intra"
	"npra/internal/ir"
)

// AllocatorSource supplies intra-thread allocators for function bodies.
// Checkout returns an allocator that is exclusively the caller's until
// checkin runs; a warm source returns allocators whose memo tables
// survive from earlier checkouts of the same body.
//
// checkin(ok) must be called exactly once when the caller is done, with
// ok reporting whether the allocation completed cleanly: an allocator
// used by a failed, degraded or panicked run is discarded rather than
// recycled, so error results never warm the cache. After checkin the
// caller must not touch the allocator or any scratch state reachable
// from it; memoized Solutions and their Contexts remain valid (they are
// immutable once memoized).
type AllocatorSource interface {
	Checkout(f *ir.Func) (al *intra.Allocator, checkin func(ok bool), err error)
}

// RewriteSource supplies rewritten (physical-register) bodies for
// (function, grant, palette) tuples. The rewritten body is a pure
// function of (FuncKey(f), pr, sr, privBase, sharedBase) for the
// default-mode allocators the engine builds — Solve is bit-identical
// for a given analysis and budget, and the rewriter's decisions depend
// only on color equality — so a source may serve one emission to any
// number of callers.
//
// Contract: bodies returned by LookupRewrite, and the body returned by
// StoreRewrite, are shared by pointer and frozen (ir.Func.Frozen); the
// caller must treat them as immutable. StoreRewrite takes the canonical
// identity-palette emission (phys[c] = c) and returns the body
// relocated onto the requested palette.
type RewriteSource interface {
	LookupRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg) (body *ir.Func, stats intra.RewriteStats, ok bool)
	StoreRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg, canonical *ir.Func, stats intra.RewriteStats) *ir.Func
}

// acquire returns the allocator for f: from the configured source when
// one is set, freshly built otherwise (with a no-op checkin).
func acquire(cfg Config, f *ir.Func) (*intra.Allocator, func(bool), error) {
	if cfg.FuncCache != nil {
		return cfg.FuncCache.Checkout(f)
	}
	al, err := intra.New(f)
	if err != nil {
		return nil, nil, err
	}
	return al, func(bool) {}, nil
}
