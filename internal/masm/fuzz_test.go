package masm

import "testing"

// FuzzExpand feeds arbitrary text to the macro expander: it must never
// panic or loop, and plain assembly must pass through untouched.
func FuzzExpand(f *testing.F) {
	f.Add(".macro m a\n add a, a, a\n.endm\nfunc f\ne:\n m v0\n halt")
	f.Add(".equ X 4\ne:\n set v0, X\n halt")
	f.Add(".macro m\n m\n.endm\ne:\n m\n halt")
	f.Add(".endm")
	f.Add(".macro")
	f.Add("@@@@")
	f.Fuzz(func(t *testing.T, src string) {
		out, err := Expand(src)
		if err != nil {
			return
		}
		// Idempotence on macro-free output: expanding again is stable.
		again, err := Expand(out)
		if err == nil && again != out {
			t.Fatalf("expansion not idempotent:\n%q\nvs\n%q", out, again)
		}
	})
}
