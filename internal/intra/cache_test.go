package intra

import (
	"testing"

	"npra/internal/ir"
)

const cacheTestSrc = `
func t
entry:
	set v0, 1
	set v1, 2
	ctx
	add v2, v0, v1
	set v3, 3
	add v2, v2, v3
	store [64], v2
	halt
`

func TestSolveCacheHitsAndMisses(t *testing.T) {
	al := MustNew(ir.MustParse(cacheTestSrc))
	b := al.Bounds()

	s1, err := al.Solve(b.MinPR, b.MinR-b.MinPR)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := al.CacheStats(); got.Hits != 0 || got.Misses != 1 {
		t.Errorf("after first Solve: %+v, want 0 hits / 1 miss", got)
	}

	s2, err := al.Solve(b.MinPR, b.MinR-b.MinPR)
	if err != nil {
		t.Fatalf("Solve (repeat): %v", err)
	}
	if s1 != s2 {
		t.Errorf("repeated Solve returned a different *Solution")
	}
	if got := al.CacheStats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("after repeat Solve: %+v, want 1 hit / 1 miss", got)
	}

	// A different budget is a miss even when it clamps to the same
	// context chain point.
	if _, err := al.Solve(b.MaxPR+5, b.MaxR); err != nil {
		t.Fatalf("Solve (clamped): %v", err)
	}
	if got := al.CacheStats(); got.Hits != 1 || got.Misses != 2 {
		t.Errorf("after clamped Solve: %+v, want 1 hit / 2 misses", got)
	}
}

func TestSolveCachesInfeasibility(t *testing.T) {
	al := MustNew(ir.MustParse(cacheTestSrc))

	_, err1 := al.Solve(-1, 0)
	if err1 == nil {
		t.Fatal("negative budget succeeded")
	}
	_, err2 := al.Solve(-1, 0)
	if err2 == nil {
		t.Fatal("negative budget succeeded on repeat")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached error differs: %v vs %v", err1, err2)
	}
	if got := al.CacheStats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", got)
	}
}

func TestCacheStatsHelpers(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Errorf("empty HitRate = %v", s.HitRate())
	}
	s.Add(CacheStats{Hits: 3, Misses: 1})
	s.Add(CacheStats{Hits: 1, Misses: 3})
	if s.Hits != 4 || s.Misses != 4 {
		t.Errorf("Add: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}
