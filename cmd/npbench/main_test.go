package main

import "testing"

func TestList(t *testing.T) {
	if err := run(0, 0, false, false, false, true, false, false, 8); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTables(t *testing.T) {
	if err := run(1, 0, false, false, false, false, false, false, 8); err != nil {
		t.Errorf("table 1: %v", err)
	}
	if err := run(2, 0, false, false, false, false, false, false, 8); err != nil {
		t.Errorf("table 2: %v", err)
	}
	if err := run(0, 14, false, false, false, false, false, false, 8); err != nil {
		t.Errorf("figure 14: %v", err)
	}
}

func TestPhases(t *testing.T) {
	if err := run(0, 0, false, false, false, false, true, false, 8); err != nil {
		t.Errorf("phases: %v", err)
	}
}

func TestPhasesWarm(t *testing.T) {
	if err := run(0, 0, false, false, false, false, true, true, 8); err != nil {
		t.Errorf("phases -funccache: %v", err)
	}
}

func TestNothingToDo(t *testing.T) {
	if err := run(0, 0, false, false, false, false, false, false, 8); err == nil {
		t.Errorf("no-op invocation accepted")
	}
}
