package encoding

import (
	"testing"

	"npra/internal/ir"
)

// FuzzDecode feeds arbitrary bytes to the object decoder: it must never
// panic, and whatever it accepts must encode back to a decodable image.
func FuzzDecode(f *testing.F) {
	good, err := Encode(ir.MustParse("func t\na:\n set v0, 5\n store [0], v0\n halt"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("NPRA"))
	f.Add(append(append([]byte{}, good...), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		fn, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(fn)
		if err != nil {
			t.Fatalf("decoded function does not re-encode: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
	})
}
