package experiments

import (
	"fmt"
	"strings"

	"npra/internal/bench"
	"npra/internal/chaitin"
	"npra/internal/intra"
	"npra/internal/ir"
)

// Figure14Row reproduces one group of bars in the paper's Figure 14
// (SRA evaluation): the registers a standalone single-thread allocator
// needs, versus the (PR, SR) the inter-thread allocator settles on for
// four threads of the same program when reducing only while moves stay
// free (the paper runs "until the cost returned is non-zero").
type Figure14Row struct {
	Name       string
	SingleRegs int // standalone Chaitin register count
	PR, SR     int // per-thread private / globally shared, zero-move
	Total      int // 4*PR + SR
	SavingPct  float64
}

// Figure14 computes the SRA register-saving figure, one benchmark per
// worker task.
func Figure14(npkts int) ([]Figure14Row, error) {
	return mapBenches(func(b *bench.Benchmark) (Figure14Row, error) {
		f := b.Gen(npkts)

		// Standalone: Chaitin with an ample partition; RegsUsed is the
		// "number of registers allocated assuming only a single thread".
		phys := make([]ir.Reg, NReg)
		for i := range phys {
			phys[i] = ir.Reg(i)
		}
		single, err := chaitin.Allocate(f, chaitin.Options{Phys: phys})
		if err != nil {
			return Figure14Row{}, fmt.Errorf("figure14 %s: single: %w", b.Name, err)
		}

		pr, sr, err := zeroMoveSRA(f)
		if err != nil {
			return Figure14Row{}, fmt.Errorf("figure14 %s: %w", b.Name, err)
		}
		total := NThreads*pr + sr
		return Figure14Row{
			Name:       b.Name,
			SingleRegs: single.RegsUsed,
			PR:         pr,
			SR:         sr,
			Total:      total,
			SavingPct:  100 * (1 - float64(total)/float64(NThreads*single.RegsUsed)),
		}, nil
	})
}

// zeroMoveSRA finds the smallest register footprint 4*PR+SR reachable
// without inserting any move instruction.
func zeroMoveSRA(f *ir.Func) (pr, sr int, err error) {
	al, err := intra.New(f)
	if err != nil {
		return 0, 0, err
	}
	b := al.Bounds()
	bestTotal := -1
	for p := b.MinPR; p <= b.MaxPR; p++ {
		// Smallest SR with zero cost at this PR: costs are monotone
		// non-increasing in SR, so scan down from the move-free demand.
		maxSR := b.MaxR - p
		if maxSR < 0 {
			maxSR = 0
		}
		lo := -1
		for s := maxSR; s >= 0; s-- {
			sol, err := al.Solve(p, s)
			if err != nil || sol.Cost > 0 {
				break
			}
			lo = s
		}
		if lo < 0 {
			continue
		}
		total := NThreads*p + lo
		if bestTotal < 0 || total < bestTotal {
			bestTotal, pr, sr = total, p, lo
		}
	}
	if bestTotal < 0 {
		return 0, 0, fmt.Errorf("no zero-move SRA point found")
	}
	return pr, sr, nil
}

// AverageSaving returns the mean register saving across rows (the paper
// reports 24% on its suite).
func AverageSaving(rows []Figure14Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += r.SavingPct
	}
	return s / float64(len(rows))
}

// FormatFigure14 renders the figure as a table plus the headline average.
func FormatFigure14(rows []Figure14Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 14: SRA register allocation, %d threads, zero move insertion\n", NThreads)
	fmt.Fprintf(&sb, "%-14s %12s %4s %4s %14s %9s\n",
		"benchmark", "single-thd R", "PR", "SR", "4*PR+SR", "saving")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %4d %4d %8d/%5d %8.1f%%\n",
			r.Name, r.SingleRegs, r.PR, r.SR, r.Total, NThreads*r.SingleRegs, r.SavingPct)
	}
	fmt.Fprintf(&sb, "average total register saving: %.1f%% (paper: 24%%)\n", AverageSaving(rows))
	return sb.String()
}
