package experiments

import (
	"fmt"
	"strings"

	"npra/internal/core"
	"npra/internal/core/errs"
	"npra/internal/ir"
	"npra/internal/sim"
)

// ScalingRow is one point of the chip-scaling study: aggregate throughput
// as processing units are added to a chip whose PUs share one memory
// channel (the paper's Figure 2.a organization; on the real IXP the
// shared SRAM was the scaling bottleneck).
type ScalingRow struct {
	PUs        int
	Cycles     int64
	Iters      int64
	Throughput float64 // iterations per kilocycle, whole chip
	Speedup    float64 // vs. the 1-PU row
}

// scalingKernel is a memory-heavy packet loop; each hardware thread works
// a private 1 KiB segment derived from its chip-wide thread id.
const scalingKernel = `
func pkt
entry:
	tid v0
	shli v0, v0, 10    ; 1 KiB segment per thread
	set v1, NPKTS
loop:
	load v2, [v0+0]
	addi v2, v2, 7
	xor v3, v2, v1
	store [v0+4], v3
	load v4, [v0+8]
	add v4, v4, v2
	store [v0+12], v4
	iter
	subi v1, v1, 1
	bnz v1, loop
	halt
`

// ClusterScaling measures chip throughput at 1, 2, 4 and 8 processing
// units (4 threads each, allocated symmetrically by the paper's
// allocator), with the given memory-channel occupancy in cycles per
// operation (0 = infinite bandwidth).
func ClusterScaling(npkts int, occupancy int64) ([]ScalingRow, error) {
	src := strings.ReplaceAll(scalingKernel, "NPKTS", fmt.Sprint(npkts))
	prog, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	ctx, cancel := allocCtx()
	alloc, err := core.AllocateSRACtx(ctx, prog, NThreads, core.Config{NReg: NReg})
	cancel()
	if err != nil {
		return nil, err
	}
	if alloc.Degraded {
		return nil, errs.Timeoutf("scaling: allocation degraded (%v); raise -timeout", alloc.Cause)
	}
	if err := alloc.Verify(); err != nil {
		return nil, err
	}

	var rows []ScalingRow
	for _, nPU := range []int{1, 2, 4, 8} {
		var pus []sim.PU
		for p := 0; p < nPU; p++ {
			var threads []*sim.Thread
			for _, t := range alloc.Threads {
				threads = append(threads, &sim.Thread{
					F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR,
				})
			}
			pus = append(pus, sim.PU{Threads: threads, TIDBase: p * NThreads})
		}
		res, err := sim.RunCluster(pus, sim.Config{
			NReg: NReg, MemWords: 16384, MemOccupancy: occupancy,
			MaxCycles: 50_000_000,
		})
		if err != nil {
			return nil, fmt.Errorf("scaling %d PUs: %w", nPU, err)
		}
		var iters int64
		for _, pu := range res.PUs {
			for _, ts := range pu.Threads {
				iters += ts.Iters
			}
		}
		row := ScalingRow{
			PUs: nPU, Cycles: res.Cycles, Iters: iters,
			Throughput: 1000 * float64(iters) / float64(res.Cycles),
		}
		if len(rows) > 0 {
			row.Speedup = row.Throughput / rows[0].Throughput
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaling renders the chip-scaling study.
func FormatScaling(free, contended []ScalingRow, occupancy int64) string {
	var sb strings.Builder
	sb.WriteString("Chip scaling: processing units sharing one memory (4 threads/PU, SRA-allocated)\n")
	fmt.Fprintf(&sb, "%4s %22s %30s\n", "PUs", "infinite bandwidth", fmt.Sprintf("channel occupancy %d cyc/op", occupancy))
	fmt.Fprintf(&sb, "%4s %12s %9s %19s %10s\n", "", "iters/kcyc", "speedup", "iters/kcyc", "speedup")
	for i := range free {
		fmt.Fprintf(&sb, "%4d %12.1f %8.2fx %19.1f %9.2fx\n",
			free[i].PUs, free[i].Throughput, free[i].Speedup,
			contended[i].Throughput, contended[i].Speedup)
	}
	return sb.String()
}
