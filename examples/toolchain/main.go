// Toolchain: the complete compilation pipeline, end to end —
//
//  1. assemble macro source (masm) into IR,
//
//  2. optimize it (passes),
//
//  3. balance registers across two threads (core, the paper's allocator),
//
//  4. legalize for the dual-bank register file (banks),
//
//  5. run the banked code on the cycle simulator (sim) and check the
//     result against the reference interpreter (interp).
//
//     go run ./examples/toolchain
package main

import (
	"fmt"
	"log"

	"npra/internal/banks"
	"npra/internal/core"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/masm"
	"npra/internal/passes"
	"npra/internal/sim"
)

const hashSrc = `
; A small rolling-hash thread written with assembler macros.
.equ ROUNDS 16
.equ INBASE 512
.equ OUTADDR 64

.macro mix h, w, t
	xor h, h, w
	xori h, h, 151
	shli t, h, 5
	add h, h, t
.endm

func hash
entry:
	set v0, 0          ; h
	set v1, INBASE     ; p
	set v2, ROUNDS     ; n
loop:
	load v3, [v1+0]
	mix v0, v3, v9
	addi v1, v1, 4
	ctx
	subi v2, v2, 1
	bnz v2, loop
	store [OUTADDR], v0
	halt
`

const sumSrc = `
.equ INBASE 1024
.equ OUTADDR 68

.macro acc s, w
	add s, s, w
	addi s, s, 3
	mov s, s            ; deliberately redundant: the optimizer removes it
.endm

func sum
entry:
	set v0, 0
	set v1, INBASE
	set v2, 12
loop:
	load v3, [v1+0]
	acc v0, v3
	addi v1, v1, 4
	ctx
	subi v2, v2, 1
	bnz v2, loop
	store [OUTADDR], v0
	halt
`

func main() {
	// 1. Assemble.
	var funcs []*ir.Func
	for _, src := range []string{hashSrc, sumSrc} {
		f, err := masm.Assemble(src)
		if err != nil {
			log.Fatal(err)
		}
		funcs = append(funcs, f)
	}

	// 2. Optimize.
	for i, f := range funcs {
		opt, st, err := passes.Optimize(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d -> %d instructions (%d pass changes)\n",
			f.Name, f.Stats().Instructions, opt.Stats().Instructions, st.Total())
		funcs[i] = opt
	}

	// Keep virtual copies for the equivalence check.
	ref := []*ir.Func{funcs[0].Clone(), funcs[1].Clone()}

	// 3. Allocate across threads.
	alloc, err := core.AllocateARA(funcs, core.Config{NReg: 24})
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated: SGR=%d, %d/%d registers\n", alloc.SGR, alloc.TotalRegisters(), 24)

	// 4. Bank legalization.
	var allocated []*ir.Func
	for _, t := range alloc.Threads {
		allocated = append(allocated, t.F)
	}
	banked, err := banks.Assign(allocated, banks.Config{BankSize: 12})
	if err != nil {
		log.Fatal(err)
	}
	for i, bf := range banked.Funcs {
		if err := banks.Check(bf, 12); err != nil {
			log.Fatal(err)
		}
		if err := banks.ScratchesDeadAcrossSwitches(bf, banked.ScratchA, banked.ScratchB); err != nil {
			log.Fatal(err)
		}
		_ = i
	}
	fmt.Printf("banked: %d staging moves inserted, scratches r%d/r%d\n",
		banked.Moves, banked.ScratchA, banked.ScratchB)

	// 5. Simulate and verify.
	var threads []*sim.Thread
	for _, bf := range banked.Funcs {
		threads = append(threads, &sim.Thread{F: bf})
	}
	res, err := sim.Run(threads, sim.Config{NReg: 24, MemWords: 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles at %.0f%% utilization\n", res.Cycles, 100*res.Utilization())

	for i, rf := range ref {
		mem := make([]uint32, 4096)
		r, err := interp.Run(rf, mem, interp.Options{TID: uint32(i)})
		if err != nil {
			log.Fatal(err)
		}
		if !r.Halted {
			log.Fatalf("reference %s did not halt", rf.Name)
		}
		addr := []int{64, 68}[i]
		if res.Mem[addr/4] != mem[addr/4] {
			log.Fatalf("%s: simulator %#x != reference %#x", rf.Name, res.Mem[addr/4], mem[addr/4])
		}
		fmt.Printf("%s result %#x matches the reference interpreter\n", rf.Name, mem[addr/4])
	}
}
