// Command nploadgen drives npserve with a closed-loop request stream
// and reports latency percentiles, status-code counts and the server's
// own singleflight/batching counters. It doubles as the serve-e2e
// acceptance gate: -max-5xx and -min-dedup turn the report into a
// pass/fail exit code.
//
// Usage:
//
//	nploadgen -url http://127.0.0.1:8080 -c 8 -duration 10s -dup 0.5
//	nploadgen -inprocess -requests 500 -dup 0.5 -report BENCH_serve.json
//	nploadgen -inprocess -kernel-mix -requests 200 \
//	          -min-funccache-hit 0.9 -min-p99-speedup 2 -report BENCH_serve_mix.json
//	nploadgen -chaos -inprocess -requests 600 \
//	          -min-eventual 0.999 -fair-tol 0.15 -report BENCH_serve_chaos.json
//	nploadgen -adversarial -inprocess -requests 600 \
//	          -max-reloc-share 0.9 -max-evict-per-req 8 -report BENCH_serve_adv.json
//
// With -inprocess, nploadgen starts an npserve instance inside the
// process (no network listener flakiness) and drives that.
//
// With -kernel-mix, the stream is composed from a shared pool of
// heavyweight kernels with varying thread multiplicities (the "millions
// of users, same kernels" shape) and the report adds the function-cache
// hit rate of the warm phase. Combined with -inprocess, a second
// baseline server with function/body caching disabled is driven with
// the identical stream first, so the report's p99_speedup isolates what
// function-granular caching buys; -min-funccache-hit and
// -min-p99-speedup turn both into pass/fail gates.
//
// With -chaos, weighted tenants drive the server through a
// deterministic fault-injecting proxy (TCP resets, latency, truncated
// and garbled responses, 503 bursts) using the resilient client from
// internal/resilience, and the report classifies every call's eventual
// outcome (first-try OK / retried-then-OK / shed / hard-failed);
// -min-eventual, -fair-tol and -max-p99-ms gate availability, DRR
// fairness and tail latency under chaos. With -inprocess, a solve
// delay (-chaos-solve-delay) and a serialized engine make the server
// the bottleneck so fairness is actually exercised.
//
// With -adversarial, workers pinned to heterogeneous hardware profiles
// (-adv-profiles, each profile doubling as its X-Tenant) rotate the
// cache-hostile progen shapes — trampoline, boundary, palette,
// nearcollision — and the report classifies outcomes per shape and
// watches the cache tiers' failure modes: relocation-storm share
// (-max-reloc-share), cross-tier eviction thrash (-max-evict-per-req),
// cross-profile raw-cache aliasing (always fatal), and DRR fairness
// under profile skew (-fair-tol, with -adv-solve-delay to make the
// server the bottleneck). With -inprocess the server runs with tiny
// cache tiers (-funccache-entries/-rewritecache-entries/-rawcache-entries)
// so those failure modes are actually reachable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"npra/internal/faultinject"
	"npra/internal/resilience"
	"npra/internal/serve"
	"npra/internal/tools/loadgen"
)

func main() {
	var (
		url       = flag.String("url", "", "target npserve base URL (omit with -inprocess)")
		inprocess = flag.Bool("inprocess", false, "start an in-process npserve and drive it")
		conc      = flag.Int("c", 8, "closed-loop worker count")
		duration  = flag.Duration("duration", 0, "wall-clock budget (0 = unlimited; set -requests then)")
		requests  = flag.Int64("requests", 0, "total request budget (0 = unlimited; set -duration then)")
		dup       = flag.Float64("dup", 0, "duplicate-request ratio, 0..1")
		pool      = flag.Int("pool", 16, "distinct specs the duplicate draws come from")
		threads   = flag.Int("threads", 3, "max threads per generated request")
		nreg      = flag.Int("nreg", 64, "register budget per request")
		timeoutMS = flag.Int64("timeout-ms", 0, "per-request timeout forwarded to the server")
		seed      = flag.Int64("seed", 1, "request-stream seed")
		reportTo  = flag.String("report", "", "write the JSON report to this file")
		max5xx    = flag.Int64("max-5xx", -1, "fail if more than this many 5xx responses (-1 disables)")
		minDedup  = flag.Float64("min-dedup", -1, "fail if the singleflight hit rate is below this (-1 disables)")
		maxP99    = flag.Float64("max-p99-ms", 0, "fail if the p99 latency exceeds this many milliseconds (0 disables)")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "engine workers for -inprocess")

		kernelMix  = flag.Bool("kernel-mix", false, "drive the kernel-mix workload (shared kernel pool, varying thread multiplicities)")
		kernels    = flag.Int("kernels", 8, "kernel pool size for -kernel-mix")
		minFuncHit = flag.Float64("min-funccache-hit", -1, "fail if the warm-phase function-cache hit rate is below this (-1 disables; -kernel-mix only)")
		minSpeedup = flag.Float64("min-p99-speedup", 0, "fail if warm p99 does not beat the cold baseline by this factor (0 disables; -kernel-mix -inprocess only)")
		maxRWShare = flag.Float64("max-rewrite-share", 0, "fail if the warm phase's rewrite+rewrite_cached share of engine time exceeds this (0 disables; -kernel-mix only)")

		adversarial  = flag.Bool("adversarial", false, "drive the adversarial workload: cache-hostile shapes under heterogeneous hardware profiles")
		advProfiles  = flag.String("adv-profiles", "ara24=24,sra64=64x3,ara128=128", "hardware profiles as name=nreg[xnthd],... (each profile is also its workers' X-Tenant)")
		advHotRatio  = flag.Float64("hot-ratio", 0.5, "fraction of adversarial requests drawn from the hot spec pool")
		advSolveDly  = flag.Duration("adv-solve-delay", 0, "per-Solve engine delay armed for -inprocess adversarial runs; >0 also serializes the engine so DRR fairness across profiles is observable")
		fcEntries    = flag.Int("funccache-entries", 8, "function-cache entry bound for the -inprocess adversarial server (negative disables the tier)")
		rwEntries    = flag.Int("rewritecache-entries", 16, "rewrite-cache entry bound for the -inprocess adversarial server (negative disables the tier)")
		rawEntries   = flag.Int("rawcache-entries", 32, "raw-request-cache entry bound for the -inprocess adversarial server (negative disables the tier)")
		maxRelocShre = flag.Float64("max-reloc-share", 0, "fail if relocation hits exceed this share of rewrite-tier lookups (0 disables; -adversarial only)")
		maxEvictReq  = flag.Float64("max-evict-per-req", 0, "fail if cross-tier evictions per request exceed this (0 disables; -adversarial only)")

		chaos         = flag.Bool("chaos", false, "drive the chaos soak: a fault-injecting proxy in front of the server, the resilient client in front of that")
		chaosReset    = flag.Float64("chaos-reset", 0.03, "per-request TCP-reset probability")
		chaosLatRate  = flag.Float64("chaos-latency-rate", 0.10, "per-request injected-latency probability")
		chaosLatency  = flag.Duration("chaos-latency", 3*time.Millisecond, "injected latency")
		chaosTruncate = flag.Float64("chaos-truncate", 0.03, "per-request truncated-response probability")
		chaosGarble   = flag.Float64("chaos-garble", 0.03, "per-request garbled-response probability")
		chaosBurstEv  = flag.Int("chaos-burst-every", 40, "5xx burst cadence in requests (0 disables bursts)")
		chaosBurstLen = flag.Int("chaos-burst-len", 2, "consecutive 503s per burst")
		chaosSolveDly = flag.Duration("chaos-solve-delay", 2*time.Millisecond, "per-Solve engine delay armed for -inprocess soaks, keeping the server backlogged so DRR fairness is observable (0 disables)")
		tenants       = flag.String("tenants", "heavy=6,light=6", "closed-loop workers per tenant as tenant=workers,...")
		tenantWeights = flag.String("tenant-weights", "heavy=3,light=1", "server-side DRR weights as tenant=weight,... (-inprocess configures the server; either way the fairness gate expects them)")
		lowFrac       = flag.Float64("low-frac", 0, "fraction of chaos requests marked priority \"low\"")
		minEventual   = flag.Float64("min-eventual", -1, "fail if the eventual success rate is below this (-1 disables)")
		fairTol       = flag.Float64("fair-tol", 0, "fail if any tenant's completion share deviates more than this from its weight share (0 disables)")
	)
	flag.Parse()
	var err error
	if *adversarial {
		err = runAdversarial(*url, *inprocess, *conc, *duration, *requests, *advProfiles,
			*advHotRatio, *timeoutMS, *seed, *reportTo, *advSolveDly,
			*fcEntries, *rwEntries, *rawEntries, *jobs,
			*max5xx, *maxRelocShre, *maxEvictReq, *maxP99, *fairTol)
	} else if *chaos {
		err = runChaos(*url, *inprocess, *duration, *requests, *threads, *nreg,
			*timeoutMS, *seed, *reportTo, *tenants, *tenantWeights, *lowFrac, *chaosSolveDly,
			faultinject.ChaosConfig{
				Seed:         uint64(*seed),
				ResetRate:    *chaosReset,
				LatencyRate:  *chaosLatRate,
				Latency:      *chaosLatency,
				TruncateRate: *chaosTruncate,
				GarbleRate:   *chaosGarble,
				BurstEvery:   *chaosBurstEv,
				BurstLen:     *chaosBurstLen,
			},
			*minEventual, *maxP99, *fairTol)
	} else if *kernelMix {
		// The mix has its own NReg default (128: its kernels are heavier
		// than plain loadgen's); only forward -nreg when the user set it.
		mixNReg := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "nreg" {
				mixNReg = *nreg
			}
		})
		err = runMix(*url, *inprocess, *conc, *requests, *kernels, *threads, mixNReg,
			*timeoutMS, *seed, *reportTo, *max5xx, *minFuncHit, *minSpeedup, *maxRWShare, *jobs)
	} else {
		err = run(*url, *inprocess, *conc, *duration, *requests, *dup, *pool, *threads,
			*nreg, *timeoutMS, *seed, *reportTo, *max5xx, *minDedup, *maxP99, *jobs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nploadgen:", err)
		os.Exit(1)
	}
}

// runMix drives the kernel-mix workload. With inprocess set it starts
// two servers — a baseline with function/body caching disabled and the
// measured one with defaults — and drives the identical stream at both.
func runMix(url string, inprocess bool, conc int, requests int64, kernels, threads, nreg int,
	timeoutMS, seed int64, reportTo string, max5xx int64, minFuncHit, minSpeedup, maxRWShare float64, jobs int) error {
	opt := loadgen.MixOptions{
		URL:         url,
		Concurrency: conc,
		Requests:    requests,
		Kernels:     kernels,
		Threads:     threads,
		NReg:        nreg,
		TimeoutMS:   timeoutMS,
		Seed:        seed,
	}
	if inprocess {
		baseline := serve.New(serve.Config{Workers: jobs, FuncCacheEntries: -1, BodyCacheEntries: -1})
		bts := httptest.NewServer(baseline.Handler())
		warm := serve.New(serve.Config{Workers: jobs})
		wts := httptest.NewServer(warm.Handler())
		defer func() {
			bts.Close()
			wts.Close()
			baseline.Close()
			warm.Close()
		}()
		opt.URL = wts.URL
		opt.BaselineURL = bts.URL
	}

	rep, err := loadgen.RunMix(context.Background(), opt)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if reportTo != "" {
		if err := os.WriteFile(reportTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if max5xx >= 0 || minFuncHit >= 0 || minSpeedup > 0 || maxRWShare > 0 {
		effMax := max5xx
		if effMax < 0 {
			effMax = requests
		}
		if err := rep.Check(effMax, minFuncHit, minSpeedup, maxRWShare); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nploadgen: mix checks passed (funccache hit rate %.4f >= %.4f, p99 speedup %.2fx >= %.2fx, rewrite share %.4f <= %.4f)\n",
			rep.FuncCacheHitRate, minFuncHit, rep.P99Speedup, minSpeedup, rep.WarmRewriteShare, maxRWShare)
	}
	return nil
}

func run(url string, inprocess bool, conc int, duration time.Duration, requests int64,
	dup float64, pool, threads, nreg int, timeoutMS, seed int64,
	reportTo string, max5xx int64, minDedup, maxP99 float64, jobs int) error {
	if inprocess {
		s := serve.New(serve.Config{Workers: jobs})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		url = ts.URL
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		URL:         url,
		Concurrency: conc,
		Duration:    duration,
		MaxRequests: requests,
		DupRatio:    dup,
		PoolSize:    pool,
		Threads:     threads,
		NReg:        nreg,
		TimeoutMS:   timeoutMS,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if reportTo != "" {
		if err := os.WriteFile(reportTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if max5xx >= 0 || minDedup >= 0 || maxP99 > 0 {
		effMax := max5xx
		if effMax < 0 {
			effMax = rep.Requests // 5xx gate disabled
		}
		if err := rep.Check(effMax, minDedup, maxP99); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nploadgen: checks passed (5xx %d <= %d, dedup %.4f >= %.4f, p99 %.2fms)\n",
			rep.FiveXX, effMax, rep.SingleflightHitRate, minDedup, rep.P99MS)
	}
	return nil
}

// runAdversarial drives the cache-hostile workload: workers pinned to
// heterogeneous hardware profiles rotate the adversarial generator
// families against one server. With -inprocess the server runs with
// deliberately tiny cache tiers (the -funccache-entries /
// -rewritecache-entries / -rawcache-entries bounds) so the
// eviction-thrash and relocation-storm gates measure the failure modes
// they exist for, and each profile gets an equal DRR weight so the
// fairness gate watches admission under profile skew.
func runAdversarial(url string, inprocess bool, conc int, duration time.Duration, requests int64,
	profileSpec string, hotRatio float64, timeoutMS, seed int64, reportTo string,
	solveDelay time.Duration, fcEntries, rwEntries, rawEntries, jobs int,
	max5xx int64, maxRelocShare, maxEvictPerReq, maxP99, fairTol float64) error {

	profiles, err := loadgen.ParseProfiles(profileSpec)
	if err != nil {
		return fmt.Errorf("parsing -adv-profiles: %w", err)
	}

	if inprocess {
		weights := make(map[string]int, len(profiles))
		for _, p := range profiles {
			weights[p.Name] = 1
		}
		cfg := serve.Config{
			Workers:             jobs,
			FuncCacheEntries:    fcEntries,
			RewriteCacheEntries: rwEntries,
			RawCacheEntries:     rawEntries,
			TenantWeights:       weights,
		}
		if solveDelay > 0 {
			// Fairness is only observable with a backlog: serialize the
			// engine and slow each Solve so DRR has something to schedule.
			faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{
				Mode: faultinject.Delay, Delay: solveDelay})
			defer faultinject.Reset()
			cfg.Workers, cfg.MaxBatch = 1, 1
		}
		s := serve.New(cfg)
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		url = ts.URL
	}
	if url == "" {
		return fmt.Errorf("adversarial run: need -url or -inprocess")
	}

	rep, err := loadgen.RunAdversarial(context.Background(), loadgen.AdvOptions{
		URL:               url,
		WorkersPerProfile: conc,
		Duration:          duration,
		MaxRequests:       requests,
		Profiles:          profiles,
		HotRatio:          hotRatio,
		TimeoutMS:         timeoutMS,
		Seed:              seed,
	})
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if reportTo != "" {
		if err := os.WriteFile(reportTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if max5xx >= 0 || maxRelocShare > 0 || maxEvictPerReq > 0 || maxP99 > 0 || fairTol > 0 {
		if err := rep.Check(max5xx, maxRelocShare, maxEvictPerReq, maxP99, fairTol); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nploadgen: adversarial checks passed (alias mismatches 0, reloc share %.4f <= %.4f, evict/req %.2f <= %.2f, fairness dev %.4f, p99 %.2fms)\n",
			rep.RelocShare, maxRelocShare, rep.EvictionsPerReq, maxEvictPerReq, rep.FairnessDev, rep.P99MS)
	}
	return nil
}

// runChaos drives the chaos soak: a fault-injecting proxy in front of
// the server (started in-process with -inprocess, or fronting -url),
// the resilient client in front of the proxy, and multiple tenants in
// closed loops. The report classifies every call as first-try OK,
// retried-then-OK, or hard-failed, and the gates turn eventual
// availability and weighted fairness into a pass/fail exit code.
func runChaos(url string, inprocess bool, duration time.Duration, requests int64,
	threads, nreg int, timeoutMS, seed int64, reportTo, tenantSpec, weightSpec string,
	lowFrac float64, solveDelay time.Duration, chaosCfg faultinject.ChaosConfig,
	minEventual, maxP99, fairTol float64) error {

	workers, err := serve.ParseTenantWeights(tenantSpec)
	if err != nil {
		return fmt.Errorf("parsing -tenants: %w", err)
	}
	weights, err := serve.ParseTenantWeights(weightSpec)
	if err != nil {
		return fmt.Errorf("parsing -tenant-weights: %w", err)
	}

	if inprocess {
		// The soak measures admission fairness, so the server must be the
		// bottleneck: one engine worker, no batching, and an injected
		// per-Solve delay (progen jobs finish in ~0.1ms otherwise — the
		// queue would never backlog and DRR would have nothing to
		// schedule). Every completion is then one DRR grant.
		if solveDelay > 0 {
			faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{
				Mode: faultinject.Delay, Delay: solveDelay})
			defer faultinject.Reset()
		}
		s := serve.New(serve.Config{Workers: 1, MaxBatch: 1, TenantWeights: weights})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		url = ts.URL
	}
	if url == "" {
		return fmt.Errorf("chaos soak: need -url or -inprocess")
	}

	proxy := faultinject.NewChaosProxy(url, chaosCfg)
	front := httptest.NewServer(proxy)
	defer front.Close()

	rep, err := loadgen.RunChaos(context.Background(), loadgen.ChaosOptions{
		URL:           front.URL,
		DirectURL:     url, // metrics scrape bypasses the chaos path
		TenantWorkers: workers,
		TenantWeights: weights,
		Duration:      duration,
		MaxRequests:   requests,
		Threads:       threads,
		NReg:          nreg,
		TimeoutMS:     timeoutMS,
		Seed:          seed,
		LowFrac:       lowFrac,
		Resilience: resilience.Config{
			MaxAttempts:   8,
			BaseBackoff:   10 * time.Millisecond,
			MaxBackoff:    200 * time.Millisecond,
			RetryAfterCap: 250 * time.Millisecond,
			HedgeAfter:    500 * time.Millisecond,
			Breaker: resilience.BreakerConfig{
				FailureThreshold: 10,
				Cooldown:         100 * time.Millisecond,
			},
		},
	})
	if rep != nil {
		st := proxy.Stats()
		rep.ChaosFired = make(map[string]int64, len(st.Fired))
		for site, n := range st.Fired {
			rep.ChaosFired[string(site)] = n
		}
	}
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if reportTo != "" {
		if err := os.WriteFile(reportTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if minEventual >= 0 || maxP99 > 0 || fairTol > 0 {
		effMin := minEventual
		if effMin < 0 {
			effMin = 0
		}
		if err := rep.Check(effMin, maxP99, fairTol); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nploadgen: chaos checks passed (eventual %.5f >= %.5f, bad retries %d, fairness dev %.4f <= %.4f, p99 %.2fms)\n",
			rep.EventualSuccessRate, effMin, rep.BadRetries, rep.FairnessDev, fairTol, rep.P99MS)
	}
	return nil
}
