package funccache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"npra/internal/ir"
	"npra/internal/progen"
)

// genFunc generates the deterministic progen body for seed. Each call
// returns a fresh *ir.Func, so content keying (not pointer identity) is
// what makes two calls with one seed hit the same entry.
func genFunc(t *testing.T, seed int64) *ir.Func {
	t.Helper()
	f := progen.GenerateStructured(rand.New(rand.NewSource(seed)), progen.StructuredConfig{
		MaxDepth: 2, MaxBodyLen: 6, MaxTripCnt: 4, MaxVars: 8, StoreWindow: 64,
	})
	f.Name = fmt.Sprintf("k%d", seed)
	return f
}

// exercise runs one checkout/solve/checkin cycle and returns whether
// the checkout was warm (== the pre-call hit counter advanced).
func exercise(t *testing.T, c *Cache, f *ir.Func, ok bool) {
	t.Helper()
	al, checkin, err := c.Checkout(f)
	if err != nil {
		t.Fatalf("Checkout(%s): %v", f.Name, err)
	}
	b := al.Bounds()
	if _, err := al.Solve(b.MinPR, b.MaxR-b.MinPR); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkin(ok)
}

func TestMissThenContentKeyedHit(t *testing.T) {
	c := New(Config{})
	exercise(t, c, genFunc(t, 1), true)
	// A fresh *ir.Func with identical text must hit: the key is the
	// body's content hash, not the pointer.
	exercise(t, c, genFunc(t, 1), true)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", st)
	}
	if st.Entries != 1 || st.Idle != 1 {
		t.Errorf("stats = %+v, want 1 entry with 1 idle allocator", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("Bytes = %d, want positive once an allocator is pooled", st.Bytes)
	}
}

// TestEvictionOrderDeterministic pins the strict-LRU contract on a
// single shard: with capacity 2, filling A,B,C evicts A; touching B
// then adding D evicts C (B was more recently used). The pattern is
// observed through hit/miss transitions, which makes the order fully
// deterministic for serial use.
func TestEvictionOrderDeterministic(t *testing.T) {
	a, b, cc, d := genFunc(t, 1), genFunc(t, 2), genFunc(t, 3), genFunc(t, 4)
	for round := 0; round < 2; round++ { // same sequence twice: same counters
		c := New(Config{Entries: 2, Shards: 1})
		exercise(t, c, a, true)
		exercise(t, c, b, true)
		exercise(t, c, cc, true) // evicts a
		if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
			t.Fatalf("round %d after C: stats = %+v, want 1 eviction, 2 entries", round, st)
		}
		exercise(t, c, b, true)  // touch b: now c is LRU
		exercise(t, c, d, true)  // evicts c
		exercise(t, c, b, true)  // still resident: hit
		exercise(t, c, cc, true) // evicted: miss (evicts b... order continues)
		st := c.Stats()
		if st.Misses != 5 || st.Hits != 2 || st.Evictions != 3 {
			t.Errorf("round %d: stats = %+v, want misses=5 hits=2 evictions=3", round, st)
		}
	}
}

// TestFailedRunsNeverCached is the degraded/error regression at the
// cache layer: checkin(false) must leave no entry and no idle
// allocator, whether the body was new (install skipped) or warm
// (allocator dropped).
func TestFailedRunsNeverCached(t *testing.T) {
	c := New(Config{})
	f := genFunc(t, 7)
	exercise(t, c, f, false) // first completion fails: no entry installed
	st := c.Stats()
	if st.Entries != 0 || st.Idle != 0 || st.Discards != 1 {
		t.Fatalf("after failed first run: stats = %+v, want no entry, 1 discard", st)
	}
	exercise(t, c, f, true) // clean run installs
	exercise(t, c, f, false)
	st = c.Stats()
	// The failed warm run checked the pooled allocator out and dropped
	// it: the entry (and its shared analysis) survives, the allocator
	// does not.
	if st.Entries != 1 || st.Idle != 0 {
		t.Errorf("after failed warm run: stats = %+v, want entry kept, allocator dropped", st)
	}
	if st.Discards != 2 {
		t.Errorf("Discards = %d, want 2", st.Discards)
	}
	exercise(t, c, f, true) // a clean run repools
	if st = c.Stats(); st.Idle != 1 {
		t.Errorf("after clean rerun: Idle = %d, want the pool refilled", st.Idle)
	}
	if st.Bytes < 0 {
		t.Errorf("Bytes = %d went negative", st.Bytes)
	}
}

// TestPoolOverflowAbsorb drains the idle pool with concurrent-style
// checkouts and verifies overflow checkins fold into the pool (memo
// kept, allocator dropped) instead of growing it past MaxIdle.
func TestPoolOverflowAbsorb(t *testing.T) {
	c := New(Config{MaxIdle: 1})
	f := genFunc(t, 9)
	exercise(t, c, f, true) // install + pool one

	al1, ci1, err := c.Checkout(f) // pops the pooled allocator
	if err != nil {
		t.Fatal(err)
	}
	al2, ci2, err := c.Checkout(f) // pool empty: overflow over shared analysis
	if err != nil {
		t.Fatal(err)
	}
	if al1 == al2 {
		t.Fatal("two live checkouts returned the same allocator")
	}
	if al1.A != al2.A {
		t.Error("overflow allocator not built over the shared analysis")
	}
	b := al2.Bounds()
	if _, err := al2.Solve(b.MinPR, b.MaxR-b.MinPR); err != nil {
		t.Fatal(err)
	}
	ci1(true) // pool has room again: recycled
	ci2(true) // pool full: absorbed + discarded
	st := c.Stats()
	if st.Idle != 1 {
		t.Errorf("Idle = %d, want MaxIdle=1 respected", st.Idle)
	}
	if st.Discards != 1 {
		t.Errorf("Discards = %d, want the overflow checkin folded away", st.Discards)
	}
	// The absorbed Solve must now be warm in the pooled allocator.
	al3, ci3, err := c.Checkout(f)
	if err != nil {
		t.Fatal(err)
	}
	if !al3.HasSolved(b.MinPR, b.MaxR-b.MinPR) {
		t.Error("overflow allocator's Solve memo was not absorbed into the pool")
	}
	ci3(true)
}

func TestCheckinIdempotent(t *testing.T) {
	c := New(Config{})
	f := genFunc(t, 11)
	al, checkin, err := c.Checkout(f)
	if err != nil {
		t.Fatal(err)
	}
	_ = al
	checkin(true)
	checkin(true) // second call must be a no-op, not a double-pool
	checkin(false)
	if st := c.Stats(); st.Idle != 1 || st.Discards != 0 {
		t.Errorf("stats = %+v, want exactly one pooled allocator", st)
	}
}

// TestConcurrentCheckouts hammers a small cache from many goroutines
// (run under -race in CI): duplicate and distinct bodies, interleaved
// failures, and an Entries bound tight enough to force eviction races
// against in-flight checkins.
func TestConcurrentCheckouts(t *testing.T) {
	c := New(Config{Entries: 4, Shards: 2, MaxIdle: 2})
	funcs := make([]*ir.Func, 6)
	for i := range funcs {
		funcs[i] = genFunc(t, int64(100+i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				f := funcs[(w+i)%len(funcs)]
				al, checkin, err := c.Checkout(f)
				if err != nil {
					t.Errorf("Checkout: %v", err)
					return
				}
				b := al.Bounds()
				if _, err := al.Solve(b.MinPR, b.MaxR-b.MinPR); err != nil {
					t.Errorf("Solve: %v", err)
					checkin(false)
					return
				}
				checkin(i%7 != 0) // sprinkle failures among the successes
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*40 {
		t.Errorf("hits+misses = %d, want every checkout counted", st.Hits+st.Misses)
	}
	if st.Entries > 4 {
		t.Errorf("Entries = %d exceeds the bound", st.Entries)
	}
	if st.Idle < 0 || st.Bytes < 0 {
		t.Errorf("negative gauges: %+v", st)
	}
}
