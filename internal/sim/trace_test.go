package sim

import (
	"strings"
	"testing"

	"npra/internal/ir"
)

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb}
	f := ir.MustParse(`
a:
	set v0, 1
	load v1, [0]
	add v2, v0, v1
	ctx
	store [4], v2
	halt`)
	res, err := Run([]*Thread{{F: f}}, Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Threads[0].Halted {
		t.Fatal("did not halt")
	}
	out := sb.String()
	for _, want := range []string{
		"set v0, 1",
		"switch (mem)",
		"memory complete",
		"switch (ctx)",
		"switch (halt)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if tr.Truncated() {
		t.Errorf("unexpected truncation")
	}
}

func TestWriterTracerTruncation(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb, MaxLines: 3}
	f := ir.MustParse(`
a:
	set v0, 100
loop:
	subi v0, v0, 1
	bnz v0, loop
	halt`)
	if _, err := Run([]*Thread{{F: f}}, Config{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Errorf("lines = %d, want 3", got)
	}
	if !tr.Truncated() {
		t.Errorf("Truncated() = false")
	}
}

// Tracing must not change the simulation itself.
func TestTraceDoesNotPerturb(t *testing.T) {
	src := `
a:
	set v0, 20
loop:
	load v1, [v0+0]
	add v1, v1, v0
	store [v0+0], v1
	iter
	subi v0, v0, 1
	bnz v0, loop
	halt`
	plain, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	traced, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{Trace: &WriterTracer{W: &sb}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles || plain.Threads[0].Instrs != traced.Threads[0].Instrs {
		t.Errorf("tracing perturbed the run: %d/%d vs %d/%d",
			plain.Cycles, plain.Threads[0].Instrs, traced.Cycles, traced.Threads[0].Instrs)
	}
}
