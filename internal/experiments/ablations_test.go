package experiments

import "testing"

func TestAblationEstimation(t *testing.T) {
	rows, err := AblationEstimation(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The whole point of PR-first: never more private-capable colors.
		if r.PRFirstPR > r.JointPR {
			t.Errorf("%s: PR-first used more private colors (%d vs %d)",
				r.Name, r.PRFirstPR, r.JointPR)
		}
	}
}

func TestAblationMoveElim(t *testing.T) {
	rows, err := AblationMoveElim(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	helped := false
	for _, r := range rows {
		if r.MovesWith > r.MovesWithout {
			t.Errorf("%s: elimination increased moves (%d vs %d)",
				r.Name, r.MovesWith, r.MovesWithout)
		}
		if r.MovesWith < r.MovesWithout {
			helped = true
		}
	}
	if !helped {
		t.Log("note: coalescing never fired on this suite at these budgets")
	}
}

func TestAblationSRA(t *testing.T) {
	rows, err := AblationSRA(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SRARegs > NReg || r.ARARegs > NReg {
			t.Errorf("%s: over budget: %+v", r.Name, r)
		}
		// The exact sweep minimizes cost first; it must never need more
		// moves than the greedy heuristic.
		if r.SRACost > r.ARACost {
			t.Errorf("%s: exact SRA cost %d > greedy ARA cost %d", r.Name, r.SRACost, r.ARACost)
		}
	}
}

func TestAblationSpillVsMove(t *testing.T) {
	rows, err := AblationSpillVsMove("md5", 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("too few sweep points: %d", len(rows))
	}
	// The tightest budgets sit below RegPmax: only spilling can allocate
	// there, and it pays heavily.
	tight := rows[0]
	if tight.SpillOps == 0 {
		t.Errorf("baseline did not spill at K=%d", tight.K)
	}
	if tight.Moves != -1 {
		t.Errorf("splitting should be infeasible at K=%d below RegPmax", tight.K)
	}
	// At the loosest budget both are clean: roughly equal cycles, no
	// spills, no moves.
	loose := rows[len(rows)-1]
	if loose.SpillOps != 0 {
		t.Errorf("baseline still spills at K=%d", loose.K)
	}
	if loose.Moves != 0 {
		t.Errorf("moves at the move-free demand: %d", loose.Moves)
	}
	if loose.MoveWinsByPc > 10 || loose.MoveWinsByPc < -10 {
		t.Errorf("crossover missing: at K=%d the gap is %.1f%%", loose.K, loose.MoveWinsByPc)
	}
	// Spill traffic must shrink monotonically-ish as K grows.
	if rows[0].SpillOps <= rows[len(rows)-2].SpillOps {
		t.Errorf("spill ops did not shrink with budget: %d -> %d",
			rows[0].SpillOps, rows[len(rows)-2].SpillOps)
	}
}

func TestAblationLatency(t *testing.T) {
	rows, err := AblationLatency(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The critical-thread win must grow with memory latency (the paper's
	// premise: spills hurt because memory is slow).
	if rows[len(rows)-1].CriticalSpeedup <= rows[0].CriticalSpeedup {
		t.Errorf("speedup did not grow with latency: %.1f%% @%d vs %.1f%% @%d",
			rows[0].CriticalSpeedup, rows[0].MemLatency,
			rows[len(rows)-1].CriticalSpeedup, rows[len(rows)-1].MemLatency)
	}
}

func TestFormatAblations(t *testing.T) {
	text, err := FormatAblations(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", text)
}

func TestAblationBaseline(t *testing.T) {
	rows, err := AblationBaseline(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The story must hold under either baseline: md5 spills there and
		// sharing wins clearly.
		if r.SpillCode == 0 {
			t.Errorf("%s: baseline did not spill md5", r.Baseline)
		}
		if r.CriticalSpeedup < 10 {
			t.Errorf("%s: critical speedup only %.1f%%", r.Baseline, r.CriticalSpeedup)
		}
	}
}

func TestAblationWeighting(t *testing.T) {
	rows, err := AblationWeighting(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The weighted objective can never be beaten at its own game by
		// more than noise: it directly optimizes WeightedDyn.
		if r.WeightedDyn > r.StaticDyn {
			t.Errorf("%s: weighted objective lost on dynamic cost (%d vs %d)",
				r.Name, r.WeightedDyn, r.StaticDyn)
		}
	}
}

func TestClusterScaling(t *testing.T) {
	free, err := ClusterScaling(24, 0)
	if err != nil {
		t.Fatal(err)
	}
	contended, err := ClusterScaling(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 4 || len(contended) != 4 {
		t.Fatalf("rows = %d/%d", len(free), len(contended))
	}
	// With infinite bandwidth, adding PUs scales well.
	if free[3].Speedup < 4 {
		t.Errorf("8 PUs free-bandwidth speedup only %.2fx", free[3].Speedup)
	}
	// With a contended channel, 8 PUs saturate visibly below the
	// free-bandwidth scaling.
	if contended[3].Speedup >= free[3].Speedup {
		t.Errorf("contention did not bite: %.2fx vs %.2fx", contended[3].Speedup, free[3].Speedup)
	}
	// Throughput never decreases when adding PUs (work is independent).
	for i := 1; i < 4; i++ {
		if contended[i].Throughput < contended[i-1].Throughput*0.95 {
			t.Errorf("throughput regressed at %d PUs: %.1f -> %.1f",
				contended[i].PUs, contended[i-1].Throughput, contended[i].Throughput)
		}
	}
	t.Logf("\n%s", FormatScaling(free, contended, 2))
}

func TestAblationScheduling(t *testing.T) {
	rows, err := AblationScheduling(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Priority must not hurt the critical threads.
	if rows[1].CriticalCyc > rows[0].CriticalCyc {
		t.Errorf("priority slowed the critical threads: %.1f vs %.1f",
			rows[1].CriticalCyc, rows[0].CriticalCyc)
	}
}

func TestAblationThreads(t *testing.T) {
	rows, err := AblationThreads(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per-thread register cost falls as the shared bank amortizes.
	if rows[2].PerThread >= rows[0].PerThread {
		t.Errorf("no amortization: %.1f regs/thread at 8 vs %.1f at 2",
			rows[2].PerThread, rows[0].PerThread)
	}
	// Aggregate throughput grows with threads (latency hiding).
	if rows[2].Throughput <= rows[0].Throughput {
		t.Errorf("throughput did not grow: %.1f vs %.1f", rows[2].Throughput, rows[0].Throughput)
	}
}
