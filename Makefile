GO ?= go

# The tier-1 gate: everything a PR must keep green.
.PHONY: all
all: check

.PHONY: check
check: vet lint build test race fuzz-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

# The npravet invariant suite (internal/analyzers): determinism
# (detlint), error taxonomy (errtaxonomy), panic-freedom (panicfree),
# context plumbing (ctxplumb), scratch-pool aliasing (poolalias),
# function-cache aliasing (cachealias), frozen rewrite-body mutation
# (frozenfunc), sleep hygiene (sleeplint), and the CFG/dataflow
# concurrency trio (lockorder, goleak, atomicmix), plus verification
# of the //lint: directives themselves. The tree is loaded and
# type-checked once and the eleven analyzers run concurrently over the
# shared packages, so the suite costs barely more wall-clock than its
# slowest pass. See docs/INTERNALS.md "Static invariants & linting".
.PHONY: lint
lint:
	$(GO) run ./cmd/npravet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The packages with real concurrency: the worker pool, the allocator
# fan-outs (setup, pricing, SRA sweep) that write per-index slots, and
# the serving layer (singleflight, batching, drain).
.PHONY: race
race:
	$(GO) test -race ./internal/core/... ./internal/funccache/... ./internal/parallel/... ./internal/serve/...

# A short native-fuzzer run over the allocation API with fault injection
# armed from the input; catches panics and verification/semantics breaks.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAllocateARA -fuzztime 10s ./internal/core/

# The guarded allocator benchmarks and their invocation. `make bench`
# runs them 5x with allocation stats and emits a candidate baseline;
# `make benchcmp` runs them once and fails if any guarded ns/op regressed
# more than 10% against the committed BENCH_alloc.json.
BENCH_PATTERN = BenchmarkAllocateARA|BenchmarkSolveCached|BenchmarkColdSolve
BENCH_ARGS    = -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 10x -benchmem .

.PHONY: bench
bench:
	$(GO) test $(BENCH_ARGS) -count 5 | $(GO) run ./internal/tools/benchcmp -emit BENCH_alloc.candidate.json

.PHONY: benchcmp
benchcmp:
	$(GO) test $(BENCH_ARGS) -count 3 | $(GO) run ./internal/tools/benchcmp -baseline BENCH_alloc.json
	$(GO) run ./cmd/npbench -phases -funccache -packets 16 -max-warm-rewrite-share 0.4

# The serving-layer benchmark: nploadgen drives an in-process npserve at
# duplicate-ratio 0.5 for 10s and writes the latency/dedup report to
# BENCH_serve.json. Gated on the ISSUE-5 acceptance criteria: no 5xx,
# singleflight hit rate > 0.4, and p99 under 5x the cold-Solve time from
# BENCH_alloc.json (7.14ms -> 36ms ceiling).
.PHONY: serve-bench
serve-bench:
	$(GO) run ./cmd/nploadgen -inprocess -c 8 -duration 10s -dup 0.5 \
		-max-5xx 0 -min-dedup 0.4 -max-p99-ms 36 -report BENCH_serve.json

# The kernel-mix benchmark: the identical request stream (shared kernel
# pool, varying thread multiplicities) driven at a cache-disabled
# baseline server and a warm one. Gated on the ISSUE-6 acceptance
# criteria: warm-phase function-cache hit rate >= 0.9 and warm p99 at
# least 2x better than the cold baseline recorded in the same run.
# ISSUE-8 adds the rewrite-tier gate: the uncached rewrite phase may
# take at most 40% of warm-phase engine time (it was ~91% before the
# rewrite-result cache).
.PHONY: serve-bench-mix
serve-bench-mix:
	$(GO) run ./cmd/nploadgen -inprocess -kernel-mix -requests 200 -c 4 \
		-max-5xx 0 -min-funccache-hit 0.9 -min-p99-speedup 2 \
		-max-rewrite-share 0.4 -report BENCH_serve_mix.json

# The chaos soak: a fault-injecting proxy (TCP resets, latency,
# truncated/garbled bodies, 5xx bursts) in front of an in-process
# npserve, the resilient client in front of that, two tenants at 3:1
# DRR weights with the engine deliberately made the bottleneck. Gated
# on the ISSUE-7 acceptance criteria: eventual success >= 0.999, zero
# retries of 400/422 (asserted inside the check), tenant completion
# shares within 15% of the weight shares, and a bounded p99.
.PHONY: serve-bench-chaos
serve-bench-chaos:
	$(GO) run ./cmd/nploadgen -chaos -inprocess -requests 600 \
		-min-eventual 0.999 -fair-tol 0.15 -max-p99-ms 500 \
		-report BENCH_serve_chaos.json

# The adversarial benchmark: cache-hostile progen shapes (trampoline /
# boundary / palette / nearcollision) under heterogeneous hardware
# profiles against an in-process server with deliberately tiny cache
# tiers. Gated on the ISSUE-10 acceptance criteria: zero cross-profile
# alias mismatches (always enforced), every shape served, no 5xx, a
# relocation share of rewrite-tier lookups at most 0.9 (under palette
# thrash nearly every hit is a relocation; 1.0 would mean the exact
# tier never worked), at most 8 evictions per request summed across the
# three tiers, profile fairness within 60% of equal shares (profiles do
# unequal work, so shares drift with speed), and a bounded p99.
.PHONY: serve-bench-adv
serve-bench-adv:
	$(GO) run ./cmd/nploadgen -adversarial -inprocess -requests 600 -c 2 \
		-max-5xx 0 -max-reloc-share 0.9 -max-evict-per-req 8 \
		-fair-tol 0.6 -max-p99-ms 250 -report BENCH_serve_adv.json
