// Command npstat reports the static structure the allocator reasons
// about: instruction mix, context-switch boundaries, non-switch regions,
// live ranges, pressure bounds and loop nesting — and exports Graphviz
// views of the CFG, the interference graphs and the NSR partition.
//
// Usage:
//
//	npstat -bench md5                        # statistics
//	npstat -bench frag -dot nsr | dot -Tsvg  # NSR structure as SVG
//	npstat program.asm -dot cfg              # your own code
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npra/internal/bench"
	"npra/internal/encoding"
	"npra/internal/ir"
	"npra/internal/report"
)

func main() {
	var (
		benches = flag.String("bench", "", "comma-separated built-in benchmark names")
		packets = flag.Int("packets", 64, "packets per thread for generated benchmarks")
		dot     = flag.String("dot", "", "emit a Graphviz graph instead of text: cfg, gig or nsr")
	)
	flag.Parse()
	if err := run(*benches, *packets, *dot, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "npstat:", err)
		os.Exit(1)
	}
}

func run(benches string, packets int, dot string, files []string) error {
	var funcs []*ir.Func
	switch {
	case benches != "" && len(files) > 0:
		return fmt.Errorf("give either -bench or files, not both")
	case benches != "":
		for _, name := range strings.Split(benches, ",") {
			b, err := bench.Get(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			funcs = append(funcs, b.Gen(packets))
		}
	case len(files) > 0:
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			var f *ir.Func
			if strings.HasSuffix(path, ".npo") {
				f, err = encoding.Decode(src)
			} else {
				f, err = ir.Parse(string(src))
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			funcs = append(funcs, f)
		}
	default:
		return fmt.Errorf("no input: give -bench names or assembly files")
	}

	for _, f := range funcs {
		switch dot {
		case "":
			fmt.Print(report.Text(f))
		case "cfg":
			fmt.Print(report.DotCFG(f))
		case "gig":
			fmt.Print(report.DotInterference(f))
		case "nsr":
			fmt.Print(report.DotNSR(f))
		default:
			return fmt.Errorf("unknown -dot kind %q (cfg, gig, nsr)", dot)
		}
	}
	return nil
}
