// Fixture: npra/internal/bench is clock-exempt by path — wall-clock
// and PRNG use here is the package's whole job, so nothing is flagged.
package bench

import (
	"math/rand"
	"time"
)

func Measure(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	_ = rng.Int63()
	return time.Since(start).Nanoseconds()
}
