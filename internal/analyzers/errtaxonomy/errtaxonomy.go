// Package errtaxonomy enforces the PR-2 error contract: every error
// crossing an internal package boundary wraps exactly one of the core
// taxonomy sentinels (ErrInvalid, ErrInfeasible, ErrTimeout,
// ErrInternal — see internal/core/errs), so callers can route on
// errors.Is without string matching.
//
// The mechanical form of the invariant: an exported function or method
// of an internal package must not return a freshly constructed untyped
// error — errors.New(...), or fmt.Errorf without a %w verb. Wrapped
// construction (fmt.Errorf("...: %w", ...), the core/errs helper
// constructors) and pass-through of an error received from a callee are
// accepted, because the callee is held to the same rule.
//
// Allowlist (from the issue): the ir package (its parse errors are
// deliberately plain, classified by core.Wrap at the boundary) and
// Must* helpers (which panic rather than return).
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the errtaxonomy pass.
var Analyzer = &anz.Analyzer{
	Name: "errtaxonomy",
	Doc: "exported functions of internal packages must not return unwrapped " +
		"errors.New/fmt.Errorf errors; wrap a core taxonomy sentinel via %w",
	Run: run,
}

// exemptPaths lists internal packages whose exported errors are outside
// the taxonomy by design.
var exemptPaths = map[string]bool{
	"npra/internal/ir": true, // parse errors are plain; core.Wrap classifies them
}

func run(pass *anz.Pass) error {
	if !strings.Contains(pass.Path, "internal/") || exemptPaths[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isBoundary(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isBoundary reports whether fd is callable from outside the package:
// an exported function, or an exported method on an exported type.
// Must* helpers are exempt — they panic instead of returning errors.
func isBoundary(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if !ast.IsExported(name) || strings.HasPrefix(name, "Must") {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && ast.IsExported(id.Name)
}

// checkFunc scans fd's own return statements (not those of nested
// function literals) for naked error constructions.
func checkFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				checkResult(pass, fd, res)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkResult(pass *anz.Pass, fd *ast.FuncDecl, res ast.Expr) {
	call, ok := res.(*ast.CallExpr)
	if !ok {
		return
	}
	pkg, name := calleePkgFunc(pass, call)
	switch {
	case pkg == "errors" && name == "New":
		pass.Reportf(res.Pos(), "%s returns an errors.New error across an internal package boundary; wrap a core taxonomy sentinel (errs.Invalidf, errs.Internalf, or fmt.Errorf with %%w)", fd.Name.Name)
	case pkg == "fmt" && name == "Errorf":
		if len(call.Args) > 0 && !wrapsSomething(call.Args[0]) {
			pass.Reportf(res.Pos(), "%s returns a fmt.Errorf error with no %%w verb across an internal package boundary; wrap a core taxonomy sentinel", fd.Name.Name)
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) when
// the callee is a selector on an imported package.
func calleePkgFunc(pass *anz.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// wrapsSomething reports whether a fmt.Errorf format literal contains a
// %w verb. Non-literal formats are given the benefit of the doubt.
func wrapsSomething(format ast.Expr) bool {
	lit, ok := format.(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
