// Package liveness computes per-instruction live-variable information for
// npra functions, the substrate for all interference analysis: live-in and
// live-out sets, the conservative co-live set LiveAt, the values live
// across each context-switch boundary, and the two register-pressure
// figures the paper uses as lower bounds (RegPmax and RegPCSBmax).
package liveness

import (
	"errors"
	"fmt"

	"npra/internal/bitset"
	"npra/internal/ir"
)

// ErrNotCSB reports a LiveAcross query at a program point that is not a
// context-switch boundary. It is returned (not panicked) because callers
// legitimately iterate over points whose CSB-ness is data-dependent; the
// remaining panic in this package (Compute on an unbuilt function) is
// pure API misuse and stays a panic by design.
var ErrNotCSB = errors.New("liveness: LiveAcross at non-CSB point")

// Info holds liveness facts for one function. Sets are indexed by global
// program point (instruction index); set elements are register numbers.
type Info struct {
	F       *ir.Func
	NumVars int

	// In[p]: variables live immediately before instruction p.
	In []bitset.Set
	// Out[p]: variables live immediately after instruction p.
	Out []bitset.Set
	// At[p]: In[p] plus the register defined at p. Two variables interfere
	// iff they are both in At[p] for some p (the paper's "co-live at a
	// program point", made safe for dead definitions).
	At []bitset.Set
}

// Compute runs the backward dataflow and returns liveness for f, which
// must be built. Registers are zero-initialized by the machine, so a use
// with no dominating definition is simply live-in at function entry.
func Compute(f *ir.Func) *Info {
	if !f.Built() {
		panic("liveness: function not built") //lint:invariant documented precondition: Compute requires f.Built(); callers construct via Build which cannot yield an unbuilt func
	}
	n := f.NumPoints()
	nv := f.NumRegs
	li := &Info{F: f, NumVars: nv}
	li.In = make([]bitset.Set, n)
	li.Out = make([]bitset.Set, n)
	li.At = make([]bitset.Set, n)
	// All per-point sets come out of three contiguous backing arrays:
	// one allocation each instead of one per point, and better locality
	// for the backward sweeps below.
	w := (nv + 63) / 64
	inBack := make([]uint64, n*w)
	outBack := make([]uint64, n*w)
	atBack := make([]uint64, n*w)
	for p := 0; p < n; p++ {
		li.In[p] = bitset.Set(inBack[p*w : (p+1)*w])
		li.Out[p] = bitset.Set(outBack[p*w : (p+1)*w])
		li.At[p] = bitset.Set(atBack[p*w : (p+1)*w])
	}

	// Worklist over blocks, backward. Within a block, propagate
	// instruction by instruction.
	inWork := make([]bool, len(f.Blocks))
	var work []int
	for i := len(f.Blocks) - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	var uses []ir.Reg
	scratch := bitset.New(nv) // reused new-In candidate, no per-instruction alloc
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := f.Blocks[bi]

		last := b.End() - 1
		out := li.Out[last]
		out.Clear()
		for _, s := range b.Succs {
			out.Or(li.In[f.Blocks[s].Start()])
		}
		changed := false
		for p := last; p >= b.Start(); p-- {
			if p != last {
				li.Out[p].Copy(li.In[p+1])
			}
			in := li.In[p]
			newIn := scratch
			newIn.Copy(li.Out[p])
			inst := f.Instr(p)
			if inst.Def != ir.NoReg {
				newIn.Remove(int(inst.Def))
			}
			uses = inst.Uses(uses[:0])
			for _, u := range uses {
				newIn.Add(int(u))
			}
			if !newIn.Equal(in) {
				li.In[p].Copy(newIn)
				changed = true
			}
		}
		if changed {
			for _, pi := range b.Preds {
				if !inWork[pi] {
					inWork[pi] = true
					work = append(work, pi)
				}
			}
		}
	}

	for p := 0; p < n; p++ {
		at := li.At[p]
		at.Copy(li.In[p])
		if d := f.Instr(p).Def; d != ir.NoReg {
			at.Add(int(d))
		}
	}
	return li
}

// LiveAcross returns the variables whose values must survive the context
// switch at CSB point p: everything live-out of p except the register
// defined by p itself. (A load's destination is delivered through the
// transfer registers and written at resume time, so it is not live across
// the switch — paper §3.2.) Querying a non-CSB point returns an error
// wrapping ErrNotCSB. The result aliases internal storage; callers must
// not modify it.
func (li *Info) LiveAcross(p int) (bitset.Set, error) {
	inst := li.F.Instr(p)
	if !inst.IsCSB() {
		return nil, fmt.Errorf("%w: point %d", ErrNotCSB, p)
	}
	if inst.Def == ir.NoReg || !li.Out[p].Has(int(inst.Def)) {
		return li.Out[p], nil
	}
	s := li.Out[p].Clone()
	s.Remove(int(inst.Def))
	return s, nil
}

// PressureMax returns RegPmax: the maximum number of co-live variables at
// any program point. This is the paper's lower bound MinR.
func (li *Info) PressureMax() int {
	max := 0
	for _, s := range li.At {
		if c := s.Count(); c > max {
			max = c
		}
	}
	return max
}

// CSBPressureMax returns RegPCSBmax: the maximum number of variables live
// across any single context-switch boundary. This is the paper's lower
// bound MinPR. The program entry point counts as a boundary (the paper's
// NSRs are bounded by "context switch instructions or program entry/exit
// points"): a value live-in at entry holds machine state (zero) that must
// survive the other threads running before this thread first does, so it
// needs a private register exactly like a value live across a switch.
func (li *Info) CSBPressureMax() int {
	max := li.EntryLive().Count()
	for p := 0; p < li.F.NumPoints(); p++ {
		if !li.F.Instr(p).IsCSB() {
			continue
		}
		across, err := li.LiveAcross(p)
		if err != nil {
			continue // unreachable: guarded by IsCSB above
		}
		if c := across.Count(); c > max {
			max = c
		}
	}
	return max
}

// EntryLive returns the variables live-in at the program entry — values
// read before any definition, observing the zero-initialized register
// file. The result aliases internal storage; callers must not modify it.
func (li *Info) EntryLive() bitset.Set {
	if li.F.NumPoints() == 0 {
		return bitset.New(li.NumVars)
	}
	return li.In[0]
}

// LiveVars returns the set of variables that are live at some point (or
// defined anywhere); variables outside it are dead code and need no
// register.
func (li *Info) LiveVars() bitset.Set {
	s := bitset.New(li.NumVars)
	for _, at := range li.At {
		s.Or(at)
	}
	return s
}

// Points returns, for each variable v, the set of program points p with
// v ∈ At[p]. This is the live-range point set that the splitting allocator
// partitions into pieces.
func (li *Info) Points() []bitset.Set {
	n := li.F.NumPoints()
	pts := make([]bitset.Set, li.NumVars)
	w := (n + 63) / 64
	backing := make([]uint64, li.NumVars*w)
	for v := range pts {
		pts[v] = bitset.Set(backing[v*w : (v+1)*w])
	}
	for p := 0; p < n; p++ {
		at := li.At[p]
		for v := at.NextSet(0); v >= 0; v = at.NextSet(v + 1) {
			pts[v].Add(p)
		}
	}
	return pts
}
