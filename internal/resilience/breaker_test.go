package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock gives tests control over the breaker's wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b := NewBreaker(cfg)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow() while closed: %v", err)
		}
		b.Report(false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}

	// A success resets the consecutive count.
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow(): %v", err)
	}
	b.Report(true)
	if got := b.Stats().ConsecutiveFailures; got != 0 {
		t.Fatalf("consecutive failures after success = %d, want 0", got)
	}

	// Threshold consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow(): %v", err)
		}
		b.Report(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() while open = %v, want ErrBreakerOpen", err)
	}
	if got := b.Stats().Opens; got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})

	if err := b.Allow(); err != nil {
		t.Fatalf("Allow(): %v", err)
	}
	b.Report(false) // trips immediately
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// Before the cooldown elapses: still failing fast.
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() mid-cooldown = %v, want ErrBreakerOpen", err)
	}

	// After the cooldown: one probe is admitted and its success closes.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow() after cooldown = %v, want probe admission", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	b.Report(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if got := b.Stats().Closes; got != 1 {
		t.Fatalf("closes = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})

	_ = b.Allow()
	b.Report(false)
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow() after cooldown: %v", err)
	}
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	// The fresh open episode starts its own cooldown.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() after re-open = %v, want ErrBreakerOpen", err)
	}
	if got := b.Stats().Opens; got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
}

func TestBreakerHalfOpenProbeBudget(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		HalfOpenProbes:   2,
		ProbeSuccesses:   2,
	})

	_ = b.Allow()
	b.Report(false)
	clk.advance(2 * time.Second)

	// Two probe slots, then refusal.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe 3 = %v, want ErrBreakerOpen (budget in flight)", err)
	}

	// One success is not enough to close at ProbeSuccesses=2...
	b.Report(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	// ...and resolving a probe frees its slot.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after slot freed: %v", err)
	}
	b.Report(true)
	b.Report(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 probe successes = %v, want closed", got)
	}
}

// TestBreakerConcurrentProbes hammers a half-open breaker from many
// goroutines under -race: the probe budget must never be exceeded and
// the automaton must end in a legal state.
func TestBreakerConcurrentProbes(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Millisecond,
		HalfOpenProbes:   3,
		ProbeSuccesses:   3,
	})
	_ = b.Allow()
	b.Report(false)
	clk.advance(time.Second)

	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Allow(); err == nil {
				mu.Lock()
				admitted++
				mu.Unlock()
				b.Report(true)
			}
		}()
	}
	wg.Wait()

	if admitted == 0 {
		t.Fatal("no probe admitted after cooldown")
	}
	// In-flight probes were bounded by the budget at all times; the
	// final state must be half-open (still collecting successes) or
	// closed (enough successes landed).
	st := b.Stats()
	if st.ProbesInFlight != 0 {
		t.Fatalf("probes in flight after all reports = %d, want 0", st.ProbesInFlight)
	}
	if st.State != BreakerClosed && st.State != BreakerHalfOpen {
		t.Fatalf("final state = %v, want closed or half-open", st.State)
	}
}
