package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		if s.Has(i) {
			t.Errorf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Add(%d) lost", i)
		}
	}
	if got := s.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Errorf("Remove failed: count=%d", s.Count())
	}
	var got []int
	got = s.Elems(got)
	want := []int{0, 63, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	s.Clear()
	if !s.Empty() {
		t.Errorf("Clear left elements")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(150)

	if !a.Intersects(b) {
		t.Errorf("Intersects = false")
	}
	if got := a.IntersectCount(b); got != 1 {
		t.Errorf("IntersectCount = %d, want 1", got)
	}

	u := a.Clone()
	if changed := u.Or(b); !changed {
		t.Errorf("Or reported unchanged")
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d, want 3", u.Count())
	}
	if changed := u.Or(b); changed {
		t.Errorf("idempotent Or reported change")
	}

	d := u.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("AndNot wrong: %v", d.Elems(nil))
	}

	i := u.Clone()
	i.And(a)
	if !i.Equal(a) {
		t.Errorf("And wrong")
	}
}

// Property: Set behaves like a map[int]bool under random operations.
func TestQuickAgainstMap(t *testing.T) {
	const n = 300
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		m := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Has(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !m[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity |a ∪ b| = |a| + |b| - |a ∩ b|.
func TestQuickCounts(t *testing.T) {
	const n = 256
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < 100; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		u := a.Clone()
		u.Or(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
