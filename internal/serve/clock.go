package serve

import "time"

// now is the serving layer's single wall-clock access point. Wall time
// here feeds request-latency observation, histogram bucketing and the
// drain deadline — serving-side observability only. It never reaches
// the allocation engine, so the PR-1 determinism contract (-j1 ≡ -jN,
// identical requests → bit-identical allocations) is untouched.
func now() time.Time { return time.Now() } //lint:ignore detlint serving-layer latency observability only; wall time never feeds an allocation decision

// since returns the elapsed wall time from t.
func since(t time.Time) time.Duration { return now().Sub(t) }
