// Fixture for the poolalias analyzer: *Piece pointers obtained before a
// scratch-context copyFrom/Reset dangle once the pooled backing array
// is rewritten — the PR-3 stale-alias bug class. The package poses as
// an intra package (import path suffix /intra) with its own Piece type.
package intra

type Piece struct {
	Color int
}

type Context struct {
	pieces []Piece
}

func (c *Context) copyFrom(o *Context) {
	c.pieces = append(c.pieces[:0], o.pieces...)
}

func (c *Context) Reset() { c.pieces = c.pieces[:0] }

func (c *Context) piece(i int) *Piece { return &c.pieces[i] }

// Coalesce is the seeded PR-3 regression: p is bound before copyFrom
// rewrites dst's pooled backing, then dereferenced after it.
func Coalesce(dst, src *Context) int {
	p := dst.piece(0)
	dst.copyFrom(src)
	return p.Color // want `use of \*Piece p bound before the copyFrom`
}

// CoalesceFixed rebinds after the reuse point: allowed.
func CoalesceFixed(dst, src *Context) int {
	dst.copyFrom(src)
	p := dst.piece(0)
	return p.Color
}

// cache outlives the call; storing a pooled *Piece into it is unsafe
// when a Reset follows in the same function.
type cache struct {
	best    *Piece
	bestVal Piece
}

// Remember stores an alias that a later Reset invalidates: flagged.
func Remember(c *cache, ctx *Context) {
	c.best = ctx.piece(1) // want `\*Piece stored into a structure that survives a later Reset`
	ctx.Reset()
}

// RememberValue copies the piece data instead of aliasing it: allowed.
func RememberValue(c *cache, ctx *Context) {
	c.bestVal = *ctx.piece(1)
	ctx.Reset()
}

// Snapshot's alias is into src, which is provably not the context being
// recycled; the justified suppression keeps it quiet.
func Snapshot(dst, src *Context) int {
	p := src.piece(0)
	dst.copyFrom(src)
	return p.Color //lint:ignore poolalias src is only read by copyFrom; its backing array is never recycled here
}

// NoKills never recycles storage, so aliases are fine.
func NoKills(ctx *Context) int {
	p := ctx.piece(0)
	q := ctx.piece(1)
	return p.Color + q.Color
}
