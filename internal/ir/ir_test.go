package ir

import (
	"strings"
	"testing"
)

const sampleSrc = `
; IP checksum fragment from the paper's Figure 4 example
func frag
entry:
	set v0, 4096      ; buf
	set v1, 16        ; len
	set v2, 0         ; sum
loop:
	bz v1, tail
	load v3, [v0+0]   ; read -> CSB
	add v2, v2, v3
	addi v0, v0, 4
	subi v1, v1, 1
	ctx
	br loop
tail:
	shri v4, v2, 16
	andi v2, v2, 0xFFFF
	add v2, v2, v4
	not v5, v2
	store [4092], v5
	halt
`

func mustSample(t *testing.T) *Func {
	t.Helper()
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseBasics(t *testing.T) {
	f := mustSample(t)
	if f.Name != "frag" {
		t.Errorf("name = %q, want frag", f.Name)
	}
	// "loop" is split after the interior bz: entry, loop, .loop.1, tail.
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if f.NumRegs != 6 {
		t.Errorf("NumRegs = %d, want 6", f.NumRegs)
	}
	if f.Physical {
		t.Errorf("Physical = true, want false")
	}
	st := f.Stats()
	if st.Instructions != 16 {
		t.Errorf("instructions = %d, want 16", st.Instructions)
	}
	if st.CSBs != 3 { // load, ctx, store
		t.Errorf("CSBs = %d, want 3", st.CSBs)
	}
}

func TestCFGEdges(t *testing.T) {
	f := mustSample(t)
	entry := f.Blocks[0]
	loop := f.Blocks[1] // just the bz
	body := f.Blocks[2] // .loop.1: load ... br loop
	tail := f.Blocks[3]
	if body.Label != ".loop.1" || tail.Label != "tail" {
		t.Fatalf("unexpected block layout: %v %v", body.Label, tail.Label)
	}
	if len(entry.Succs) != 1 || entry.Succs[0] != loop.Index {
		t.Errorf("entry succs = %v", entry.Succs)
	}
	// loop (bz) branches to tail or falls through to body.
	if len(loop.Succs) != 2 {
		t.Errorf("loop succs = %v, want 2", loop.Succs)
	}
	// body ends in "br loop".
	if len(body.Succs) != 1 || body.Succs[0] != loop.Index {
		t.Errorf("body succs = %v", body.Succs)
	}
	found := false
	for _, p := range tail.Preds {
		if p == loop.Index {
			found = true
		}
	}
	if !found {
		t.Errorf("tail preds = %v, want to contain loop", tail.Preds)
	}
}

func TestPointSuccs(t *testing.T) {
	f := mustSample(t)
	var buf []int
	// The bz at start of loop: succs are tail's start and the next point.
	bzPoint := f.Blocks[1].Start()
	buf = f.PointSuccs(bzPoint, buf[:0])
	if len(buf) != 2 {
		t.Fatalf("bz succs = %v, want 2", buf)
	}
	// halt has no successors.
	halt := f.NumPoints() - 1
	buf = f.PointSuccs(halt, buf[:0])
	if len(buf) != 0 {
		t.Errorf("halt succs = %v, want none", buf)
	}
	// br at end of the loop body goes back to loop start.
	br := f.Blocks[2].End() - 1
	buf = f.PointSuccs(br, buf[:0])
	if len(buf) != 1 || buf[0] != f.Blocks[1].Start() {
		t.Errorf("br succs = %v, want [%d]", buf, f.Blocks[1].Start())
	}
}

func TestRoundTrip(t *testing.T) {
	f := mustSample(t)
	text := f.Format()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if g.Format() != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, g.Format())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "frob v1", "unknown mnemonic"},
		{"bad operand count", "add v1, v2", "want 3 operands"},
		{"bad register", "mov v1, x2", "bad register"},
		{"mixed reg kinds", "mov v1, r2", "mixed"},
		{"bad target", "entry:\n br nowhere", "unknown branch target"},
		{"fall off end", "set v0, 1", "falls off the end"},
		{"dup label", "a:\n halt\na:\n halt", "duplicate label"},
		{"empty block", "a:\nb:\n halt", "is empty"},
		{"bad imm", "set v0, zork", "bad immediate"},
		{"empty mem", "load v0, []", "empty memory operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestParseMemoryForms(t *testing.T) {
	f := MustParse(`
a:
	set v0, 100
	load v1, [v0+8]
	load v2, [v0-4]
	load v3, [v0]
	load v4, [64]
	store [v0+8], v1
	store [32], v2
	halt`)
	ins := f.Blocks[0].Instrs
	if ins[1].Op != OpLoad || ins[1].Imm != 8 {
		t.Errorf("load+off: %+v", ins[1])
	}
	if ins[2].Imm != -4 {
		t.Errorf("load-neg: %+v", ins[2])
	}
	if ins[3].Imm != 0 {
		t.Errorf("load no off: %+v", ins[3])
	}
	if ins[4].Op != OpLoadA || ins[4].Imm != 64 {
		t.Errorf("load abs: %+v", ins[4])
	}
	if ins[5].Op != OpStore || ins[5].B != 1 {
		t.Errorf("store: %+v", ins[5])
	}
	if ins[6].Op != OpStoreA || ins[6].Imm != 32 {
		t.Errorf("store abs: %+v", ins[6])
	}
}

func TestPhysicalParse(t *testing.T) {
	f := MustParse("a:\n mov r1, r0\n halt")
	if !f.Physical {
		t.Errorf("Physical = false, want true")
	}
	if !strings.Contains(f.Format(), "mov r1, r0") {
		t.Errorf("physical formatting lost: %s", f.Format())
	}
}

func TestClone(t *testing.T) {
	f := mustSample(t)
	g := f.Clone()
	g.Blocks[0].Instrs[0].Imm = 999
	if f.Blocks[0].Instrs[0].Imm == 999 {
		t.Errorf("Clone aliases instruction storage")
	}
	if !g.Built() {
		t.Errorf("clone of built func is unbuilt")
	}
	if g.Format() == f.Format() {
		t.Errorf("mutation did not show up in clone")
	}
}

func TestRenumberRegs(t *testing.T) {
	f := MustParse(`
a:
	set v10, 1
	set v20, 2
	add v30, v10, v20
	store [0], v30
	halt`)
	n := f.RenumberRegs()
	if n != 3 {
		t.Fatalf("RenumberRegs = %d, want 3", n)
	}
	if err := f.Build(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	in := f.Blocks[0].Instrs[2]
	if in.Def != 2 || in.A != 0 || in.B != 1 {
		t.Errorf("renumbered add = %+v", in)
	}
}

func TestBuilder(t *testing.T) {
	bu := NewBuilder("gen")
	bu.Label("top")
	a := bu.Set(5)
	b := bu.Set(7)
	c := bu.Op3(OpAdd, a, b)
	bu.Store(a, 0, c)
	bu.Iter()
	bu.BNZ(c, "top")
	bu.Label("done")
	bu.Halt()
	f, err := bu.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if f.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3", f.NumRegs)
	}
	if len(f.Blocks) != 2 {
		t.Errorf("blocks = %d, want 2", len(f.Blocks))
	}
	if _, err := Parse(f.Format()); err != nil {
		t.Errorf("builder output does not reparse: %v", err)
	}
}

func TestInstrPredicates(t *testing.T) {
	csb := Instr{Op: OpLoad, Def: 0, A: 1}
	if !csb.IsCSB() {
		t.Errorf("load not CSB")
	}
	if (&Instr{Op: OpAdd}).IsCSB() {
		t.Errorf("add is CSB")
	}
	br := Instr{Op: OpBr, Target: "x"}
	if !br.IsBranch() || !br.IsUncond() {
		t.Errorf("br predicates wrong")
	}
	bz := Instr{Op: OpBZ, A: 0, Target: "x"}
	if !bz.IsBranch() || bz.IsUncond() {
		t.Errorf("bz predicates wrong")
	}
	var buf []Reg
	st := Instr{Op: OpStore, Def: NoReg, A: 3, B: 4}
	buf = st.Uses(buf)
	if len(buf) != 2 || buf[0] != 3 || buf[1] != 4 {
		t.Errorf("store uses = %v", buf)
	}
}
