// Command npsim runs programs on the IXP-style micro-engine simulator and
// reports cycle-level statistics. It can run raw assembly files, built-in
// benchmarks under the baseline (32-register partition, Chaitin with
// spilling) discipline, or under the paper's cross-thread sharing
// allocation — making the spill-vs-share difference directly observable.
//
// Usage:
//
//	npsim [-alloc baseline|sharing|none] [-latency 20] [-packets 64]
//	      (-bench name[,name...] | file.asm [...])
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npra/internal/bench"
	"npra/internal/chaitin"
	"npra/internal/core"
	"npra/internal/encoding"
	"npra/internal/ir"
	"npra/internal/sim"
)

func main() {
	var (
		allocMode = flag.String("alloc", "sharing", "allocation: baseline (Chaitin@32/thread), sharing (the paper's allocator), none (run as-is)")
		latency   = flag.Int64("latency", 20, "memory latency in cycles")
		swlat     = flag.Int64("switch-latency", 0, "extra cycles per context switch")
		packets   = flag.Int("packets", 64, "packets per thread for generated benchmarks")
		benches   = flag.String("bench", "", "comma-separated built-in benchmark names")
		nreg      = flag.Int("nreg", 128, "register file size")
		maxCycles = flag.Int64("max-cycles", 50_000_000, "cycle budget")
		trace     = flag.Int("trace", 0, "print the first N trace lines (instruction-level)")
	)
	flag.Parse()
	if err := run(*allocMode, *latency, *swlat, *packets, *benches, *nreg, *maxCycles, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
}

func run(allocMode string, latency, swlat int64, packets int, benches string, nreg int, maxCycles int64, traceLines int, files []string) error {
	funcs, names, err := loadFuncs(benches, packets, files)
	if err != nil {
		return err
	}

	var threads []*sim.Thread
	switch allocMode {
	case "none":
		for _, f := range funcs {
			threads = append(threads, &sim.Thread{F: f})
		}
	case "baseline":
		per := nreg / len(funcs)
		for i, f := range funcs {
			phys := make([]ir.Reg, per)
			for k := range phys {
				phys[k] = ir.Reg(i*per + k)
			}
			res, err := chaitin.Allocate(f, chaitin.Options{
				Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
			})
			if err != nil {
				return fmt.Errorf("baseline thread %d: %w", i, err)
			}
			fmt.Printf("thread %d (%s): baseline used %d regs, spilled %d live ranges (%d spill instrs)\n",
				i, names[i], res.RegsUsed, res.Spilled, res.SpillCode)
			threads = append(threads, &sim.Thread{F: res.F, ProtectLo: i * per, ProtectHi: (i + 1) * per})
		}
	case "sharing":
		alloc, err := core.AllocateARA(funcs, core.Config{NReg: nreg})
		if err != nil {
			return err
		}
		if err := alloc.Verify(); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Printf("sharing allocation: SGR=%d, total registers %d/%d\n",
			alloc.SGR, alloc.TotalRegisters(), nreg)
		for i, t := range alloc.Threads {
			fmt.Printf("thread %d (%s): PR=%d SR=%d moves=%d\n", i, names[i], t.PR, t.SR, t.Stats.Added())
			threads = append(threads, &sim.Thread{F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR})
		}
	default:
		return fmt.Errorf("unknown -alloc %q", allocMode)
	}

	cfg := sim.Config{
		NReg: nreg, MemWords: bench.MemWords,
		MemLatency: latency, SwitchLatency: swlat, MaxCycles: maxCycles,
	}
	var tracer *sim.WriterTracer
	if traceLines > 0 {
		tracer = &sim.WriterTracer{W: os.Stdout, MaxLines: traceLines, Physical: allocMode != "none"}
		cfg.Trace = tracer
	}
	res, err := sim.Run(threads, cfg)
	if err != nil {
		return err
	}
	if tracer != nil && tracer.Truncated() {
		fmt.Printf("... trace truncated at %d lines\n", traceLines)
	}

	fmt.Printf("\ntotal cycles %d, idle %d, utilization %.1f%%\n",
		res.Cycles, res.Idle, 100*res.Utilization())
	fmt.Printf("%-3s %-14s %10s %10s %8s %8s %10s %7s\n",
		"thd", "program", "instrs", "busy", "#ctx", "iters", "cyc/iter", "halted")
	for i, ts := range res.Threads {
		fmt.Printf("%-3d %-14s %10d %10d %8d %8d %10.1f %7v\n",
			i, names[i], ts.Instrs, ts.BusyCycles, ts.CTX, ts.Iters, ts.CyclesPerIter(), ts.Halted)
	}
	return nil
}

func loadFuncs(benches string, packets int, files []string) ([]*ir.Func, []string, error) {
	if benches != "" && len(files) > 0 {
		return nil, nil, fmt.Errorf("give either -bench or files, not both")
	}
	var funcs []*ir.Func
	var names []string
	if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			b, err := bench.Get(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, err
			}
			funcs = append(funcs, b.Gen(packets))
			names = append(names, b.Name)
		}
		return funcs, names, nil
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no input: give -bench names or assembly files")
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var f *ir.Func
		if strings.HasSuffix(path, ".npo") {
			f, err = encoding.Decode(src)
		} else {
			f, err = ir.Parse(string(src))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		funcs = append(funcs, f)
		names = append(names, f.Name)
	}
	return funcs, names, nil
}
