package experiments

import (
	"fmt"
	"strings"

	"npra/internal/bench"
	"npra/internal/estimate"
	"npra/internal/ig"
)

// Table1Row reproduces one row of the paper's Table 1: static program
// properties, the register-pressure bounds, and the simulated cycles per
// main-loop iteration (4 threads of the same benchmark, baseline
// allocation, as the benchmarks ship).
type Table1Row struct {
	Name       string
	Instrs     int
	CyclesIter float64
	CTX        int
	CTXPct     float64
	LiveRanges int
	RegPmax    int // MinR
	RegPCSBmax int // MinPR
	MaxR       int
	MaxPR      int
	NSRs       int
	AvgNSRSize float64
}

// Table1 computes the benchmark property table, one benchmark per
// worker task.
func Table1(npkts int) ([]Table1Row, error) {
	return mapBenches(func(b *bench.Benchmark) (Table1Row, error) {
		f := b.Gen(npkts)
		st := f.Stats()
		a := ig.Analyze(f)
		est, err := estimate.Compute(a)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 %s: %w", b.Name, err)
		}

		threads, _, err := baselineThreads(genCopies(b, NThreads, npkts))
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 %s: %w", b.Name, err)
		}
		res, err := runSim(threads)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 %s: sim: %w", b.Name, err)
		}
		cyc := 0.0
		for _, ts := range res.Threads {
			cyc += ts.CyclesPerIter()
		}
		cyc /= float64(len(res.Threads))

		return Table1Row{
			Name:       b.Name,
			Instrs:     st.Instructions,
			CyclesIter: cyc,
			CTX:        st.CSBs,
			CTXPct:     100 * float64(st.CSBs) / float64(st.Instructions),
			LiveRanges: a.LiveRanges(),
			RegPmax:    est.MinR,
			RegPCSBmax: est.MinPR,
			MaxR:       est.MaxR,
			MaxPR:      est.MaxPR,
			NSRs:       a.NSR.NumRegions,
			AvgNSRSize: a.NSR.AvgSize(),
		}, nil
	})
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Benchmark applications (4 threads, %d registers, baseline allocation)\n", NReg)
	fmt.Fprintf(&sb, "%-14s %7s %10s %5s %6s %7s %8s %11s %6s %7s %6s %8s\n",
		"benchmark", "instrs", "cyc/iter", "#CTX", "CTX%", "#live", "RegPmax", "RegPCSBmax", "MaxR", "MaxPR", "#NSR", "avgNSR")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %7d %10.1f %5d %5.1f%% %7d %8d %11d %6d %7d %6d %8.1f\n",
			r.Name, r.Instrs, r.CyclesIter, r.CTX, r.CTXPct, r.LiveRanges,
			r.RegPmax, r.RegPCSBmax, r.MaxR, r.MaxPR, r.NSRs, r.AvgNSRSize)
	}
	return sb.String()
}
