package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"npra/internal/core"
	"npra/internal/core/errs"
	"npra/internal/resilience"
)

// ChaosOptions configures a chaos soak: multiple tenants drive a
// chaos proxy (see faultinject.ChaosProxy) in closed loops through the
// resilient client, and the report classifies every call's eventual
// outcome. Zero values take the noted defaults.
type ChaosOptions struct {
	// URL is the chaos proxy's base URL — the faulty path. Required.
	URL string

	// DirectURL is the backend's own base URL, used for the post-run
	// /metrics scrape (which must not be garbled); default URL.
	DirectURL string

	// TenantWorkers maps each tenant to its closed-loop worker count
	// (default {"heavy": 6, "light": 6}).
	TenantWorkers map[string]int

	// TenantWeights is the server-side DRR weight per tenant, used by
	// the fairness gate to compute expected completion shares (default:
	// weight 1 each). It must mirror the server's configuration.
	TenantWeights map[string]int

	// Duration bounds the run in wall time; MaxRequests bounds it in
	// calls. At least one must be set.
	Duration    time.Duration
	MaxRequests int64

	// Threads, NReg, TimeoutMS and Seed shape the generated request
	// stream exactly as in Options.
	Threads   int
	NReg      int
	TimeoutMS int64
	Seed      int64

	// LowFrac marks this fraction of calls priority "low" (default 0),
	// exercising the server's shed tiers under pressure.
	LowFrac float64

	// PerCallTimeout bounds one call end to end, retries included
	// (default 15s).
	PerCallTimeout time.Duration

	// Resilience parameterizes the shared resilient client; zero fields
	// take that package's defaults. CheckBody is overridden to validate
	// allocation response bodies (catching garbled payloads).
	Resilience resilience.Config
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.DirectURL == "" {
		o.DirectURL = o.URL
	}
	if len(o.TenantWorkers) == 0 {
		o.TenantWorkers = map[string]int{"heavy": 6, "light": 6}
	}
	if o.Threads <= 0 {
		o.Threads = 3
	}
	if o.NReg <= 0 {
		o.NReg = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PerCallTimeout <= 0 {
		o.PerCallTimeout = 15 * time.Second
	}
	return o
}

// ChaosReport classifies a chaos soak's outcomes. The three terminal
// classes partition Calls: FirstTryOK + RetriedOK + HardFailed.
type ChaosReport struct {
	Calls      int64 `json:"calls"`
	FirstTryOK int64 `json:"first_try_ok"`
	RetriedOK  int64 `json:"retried_ok"`  // succeeded after >=1 retry round
	HardFailed int64 `json:"hard_failed"` // no terminal success (budget or deadline exhausted)

	// ShedResponses counts 429s observed across all attempts (requests
	// the server refused under its admission policy, whether or not the
	// call eventually succeeded).
	ShedResponses int64 `json:"shed_responses"`

	EventualSuccessRate float64 `json:"eventual_success_rate"`

	// RetriesByTrigger breaks retries down by what caused them;
	// BadRetries is the subset triggered by 400/422 — the client
	// promises never to retry those, so it must be 0.
	RetriesByTrigger map[string]int64 `json:"retries_by_trigger"`
	BadRetries       int64            `json:"bad_retries"`

	Hedges         int64 `json:"hedges"`
	BreakerOpens   int64 `json:"breaker_opens"`
	BreakerRejects int64 `json:"breaker_rejects"`

	// TenantOK counts eventual successes per tenant; FairnessDev is the
	// largest relative deviation of any tenant's completion share from
	// its weight share (0 = perfectly weight-proportional).
	TenantOK    map[string]int64 `json:"tenant_ok"`
	FairnessDev float64          `json:"fairness_dev"`

	DurationS     float64 `json:"duration_s"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Per-call eventual latency (first attempt to terminal answer).
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`

	// ChaosFired counts faults the proxy injected, keyed by site name —
	// filled in by the caller that owns the proxy.
	ChaosFired map[string]int64 `json:"chaos_fired,omitempty"`

	// Metrics is the backend's /metrics scrape (via DirectURL).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Check validates the soak against the chaos acceptance gates:
// eventual success rate at least minEventual, zero retries of 400/422,
// p99 at most maxP99MS (skipped when not positive), and every tenant's
// completion share within fairTol of its weight share (skipped when
// fairTol is not positive).
func (r *ChaosReport) Check(minEventual, maxP99MS, fairTol float64) error {
	if r.Calls == 0 {
		return errs.Internalf("chaos: no calls completed")
	}
	if r.EventualSuccessRate < minEventual {
		return errs.Internalf("chaos: eventual success rate %.5f below the %.5f floor (%d hard failures)",
			r.EventualSuccessRate, minEventual, r.HardFailed)
	}
	if r.BadRetries > 0 {
		return errs.Internalf("chaos: %d retries were triggered by 400/422 — those must never be retried", r.BadRetries)
	}
	if maxP99MS > 0 && r.P99MS > maxP99MS {
		return errs.Internalf("chaos: p99 latency %.2fms above the %.2fms ceiling", r.P99MS, maxP99MS)
	}
	if fairTol > 0 && r.FairnessDev > fairTol {
		return errs.Internalf("chaos: tenant completion share deviates %.4f from the weight share (allowed %.4f): %v",
			r.FairnessDev, fairTol, r.TenantOK)
	}
	return nil
}

// chaosSpec derives one tenant's request i: a fresh unique workload per
// call (tenant-salted so tenants never collide in the dedup layer, and
// fairness measures real engine work).
func chaosSpec(o *ChaosOptions, tenantIdx int, i int64, low bool) []byte {
	req := core.WireRequest{NReg: o.NReg, TimeoutMS: o.TimeoutMS}
	if low {
		req.Priority = "low"
	}
	nthreads := 1 + int(i)%o.Threads
	for th := 0; th < nthreads; th++ {
		req.Threads = append(req.Threads, core.WireThread{
			Progen: &core.WireProgen{
				Seed: o.Seed*1_000_000_000 + int64(tenantIdx)*100_000_000 + i*10 + int64(th),
			},
		})
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		return []byte("{}")
	}
	return blob
}

// checkAllocBody validates a 2xx /allocate response body: it must be
// the JSON allocation envelope. Garbled payloads that are no longer
// valid JSON (or lost their required fields) are caught here and
// retried; corruption inside a still-valid JSON value is beyond a
// schema check and out of scope.
func checkAllocBody(status int, body []byte) error {
	var resp struct {
		NReg    int             `json:"nreg"`
		Threads json.RawMessage `json:"threads"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("loadgen: undecodable allocation body: %w", err)
	}
	if resp.NReg <= 0 || len(resp.Threads) == 0 {
		return errs.Internalf("loadgen: allocation body missing nreg/threads")
	}
	return nil
}

// RunChaos drives the chaos soak and classifies every call. It stops
// when ctx is done, Duration elapses, or MaxRequests calls have been
// issued — whichever comes first.
func RunChaos(ctx context.Context, opt ChaosOptions) (*ChaosReport, error) {
	opt = opt.withDefaults()
	if opt.URL == "" {
		return nil, errs.Invalidf("loadgen: no chaos target URL")
	}
	if opt.Duration <= 0 && opt.MaxRequests <= 0 {
		return nil, errs.Invalidf("loadgen: need a duration or a request budget")
	}
	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}

	rcfg := opt.Resilience
	rcfg.CheckBody = checkAllocBody
	if rcfg.Seed == 0 {
		rcfg.Seed = uint64(opt.Seed)
	}
	client := resilience.New(rcfg)

	tenants := make([]string, 0, len(opt.TenantWorkers))
	for t := range opt.TenantWorkers {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	type callStats struct {
		calls, firstOK, retriedOK, hardFailed int64
		latencies                             []float64
	}
	var (
		mu       sync.Mutex
		perT     = make(map[string]*callStats, len(tenants))
		issued   atomic.Int64
		lowDraws atomic.Int64
	)
	for _, t := range tenants {
		perT[t] = &callStats{}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ti, tenant := range tenants {
		hdr := http.Header{}
		hdr.Set("X-Tenant", tenant)
		for w := 0; w < opt.TenantWorkers[tenant]; w++ {
			wg.Add(1)
			go func(ti int, tenant string, hdr http.Header) {
				defer wg.Done()
				for ctx.Err() == nil {
					ticket := issued.Add(1)
					if opt.MaxRequests > 0 && ticket > opt.MaxRequests {
						return
					}
					// Deterministic low-priority sprinkling: every k-th call
					// is low when LowFrac = 1/k-ish.
					low := opt.LowFrac > 0 &&
						float64(lowDraws.Add(1)%100) < opt.LowFrac*100
					body := chaosSpec(&opt, ti, ticket, low)

					cctx, cancel := context.WithTimeout(ctx, opt.PerCallTimeout)
					t0 := time.Now()
					res, err := client.Post(cctx, opt.URL+"/allocate", "application/json", body, hdr)
					lat := float64(time.Since(t0).Nanoseconds()) / 1e6
					cancel()

					mu.Lock()
					st := perT[tenant]
					st.calls++
					switch {
					case err == nil && res.Status == http.StatusOK:
						if res.Retries == 0 {
							st.firstOK++
						} else {
							st.retriedOK++
						}
						st.latencies = append(st.latencies, lat)
					case ctx.Err() != nil:
						// The run ended mid-call; don't count it as a failure.
						st.calls--
					default:
						// Exhausted budget, dead ctx, or a terminal non-200.
						st.hardFailed++
					}
					mu.Unlock()
				}
			}(ti, tenant, hdr)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &ChaosReport{
		TenantOK:  make(map[string]int64, len(tenants)),
		DurationS: elapsed.Seconds(),
	}
	var all []float64
	for _, t := range tenants {
		st := perT[t]
		rep.Calls += st.calls
		rep.FirstTryOK += st.firstOK
		rep.RetriedOK += st.retriedOK
		rep.HardFailed += st.hardFailed
		rep.TenantOK[t] = st.firstOK + st.retriedOK
		all = append(all, st.latencies...)
	}
	sort.Float64s(all)
	if len(all) > 0 {
		rep.P50MS = percentile(all, 0.50)
		rep.P90MS = percentile(all, 0.90)
		rep.P99MS = percentile(all, 0.99)
		rep.MaxMS = all[len(all)-1]
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		rep.MeanMS = sum / float64(len(all))
	}
	if rep.Calls > 0 {
		rep.EventualSuccessRate = float64(rep.FirstTryOK+rep.RetriedOK) / float64(rep.Calls)
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Calls) / elapsed.Seconds()
	}

	cst := client.Stats()
	rep.RetriesByTrigger = cst.RetriesByTrigger
	rep.ShedResponses = cst.RetriesByTrigger["429"]
	rep.BadRetries = cst.RetriesByTrigger["400"] + cst.RetriesByTrigger["422"]
	rep.Hedges = cst.Hedges
	rep.BreakerRejects = cst.BreakerRejects
	bst := client.BreakerFor(opt.URL).Stats()
	rep.BreakerOpens = bst.Opens
	rep.FairnessDev = fairnessDev(rep.TenantOK, opt.TenantWeights)

	metrics, err := ScrapeMetrics(&http.Client{Timeout: 10 * time.Second}, opt.DirectURL)
	if err != nil {
		return rep, fmt.Errorf("loadgen: scraping backend metrics after the soak: %w", err)
	}
	rep.Metrics = metrics
	return rep, nil
}

// fairnessDev returns the largest relative deviation of any tenant's
// completion share from its weight share (weights default to 1).
func fairnessDev(ok map[string]int64, weights map[string]int) float64 {
	if len(ok) < 2 {
		return 0
	}
	names := make([]string, 0, len(ok))
	for t := range ok {
		names = append(names, t)
	}
	sort.Strings(names)
	var totalOK int64
	totalW := 0
	for _, t := range names {
		totalOK += ok[t]
		w := weights[t]
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	if totalOK == 0 || totalW == 0 {
		return 0
	}
	worst := 0.0
	for _, t := range names {
		w := weights[t]
		if w <= 0 {
			w = 1
		}
		share := float64(ok[t]) / float64(totalOK)
		wshare := float64(w) / float64(totalW)
		dev := (share - wshare) / wshare
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}
