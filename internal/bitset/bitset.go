// Package bitset provides the dense bit sets used by the dataflow and
// interference-graph machinery. Sets are fixed-width: all operands of a
// binary operation must have been created with the same capacity.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set.
type Set []uint64

// New returns a set with capacity for n elements.
func New(n int) Set { return make(Set, (n+63)/64) }

// Add inserts i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is present.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear empties the set.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Copy overwrites s with t.
func (s Set) Copy(t Set) { copy(s, t) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Or sets s |= t and reports whether s changed.
func (s Set) Or(t Set) bool {
	changed := false
	for i, w := range t {
		n := s[i] | w
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// And sets s &= t.
func (s Set) And(t Set) {
	for i := range s {
		s[i] &= t[i]
	}
}

// AndNot sets s &^= t.
func (s Set) AndNot(t Set) {
	for i := range s {
		s[i] &^= t[i]
	}
}

// Count returns the number of elements.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share an element.
func (s Set) Intersects(t Set) bool {
	for i, w := range s {
		if w&t[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns |s ∩ t|.
func (s Set) IntersectCount(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w & t[i])
	}
	return n
}

// Equal reports whether s and t hold the same elements.
func (s Set) Equal(t Set) bool {
	for i, w := range s {
		if w != t[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// NextSet returns the smallest element >= i, or -1 if there is none. It
// is the closure-free iteration primitive for hot loops:
//
//	for v := s.NextSet(0); v >= 0; v = s.NextSet(v + 1) { ... }
//
// visits the same elements as ForEach but allows early exit and keeps
// the loop body inlinable.
func (s Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(s) {
		return -1
	}
	w := s[wi] &^ (1<<(uint(i)&63) - 1)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s) {
			return -1
		}
		w = s[wi]
	}
}

// OrCount returns |s ∪ t| without materializing the union.
func (s Set) OrCount(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w | t[i])
	}
	return n
}

// AndNotCount returns |s \ t| without materializing the difference.
func (s Set) AndNotCount(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w &^ t[i])
	}
	return n
}

// Elems appends the elements in ascending order to buf and returns it.
func (s Set) Elems(buf []int) []int {
	s.ForEach(func(i int) { buf = append(buf, i) })
	return buf
}
