// Fixture stub for the frozenfunc analyzer: a minimal ir package
// (import path suffix /ir) with the Func shape and its mutating and
// caller-owned methods.
package ir

type Reg int32

type Instr struct {
	Def Reg
}

type Block struct {
	Label  string
	Instrs []Instr
}

type Func struct {
	Name    string
	NumRegs int
	Blocks  []*Block
}

func (f *Func) Build() error   { return nil }
func (f *Func) RenumberRegs()  {}
func (f *Func) Format() string { return f.Name }
func (f *Func) Clone() *Func   { return &Func{Name: f.Name} }
