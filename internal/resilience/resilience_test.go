package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func fastConfig() Config {
	return Config{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        42,
	}
}

func TestPostRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusInternalServerError, http.StatusServiceUnavailable, http.StatusGatewayTimeout} {
		t.Run(strconv.Itoa(status), func(t *testing.T) {
			var calls int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if atomic.AddInt64(&calls, 1) < 3 {
					w.WriteHeader(status)
					return
				}
				fmt.Fprint(w, "ok")
			}))
			defer srv.Close()

			c := New(fastConfig())
			res, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil)
			if err != nil {
				t.Fatalf("Post: %v", err)
			}
			if res.Status != http.StatusOK || string(res.Body) != "ok" {
				t.Fatalf("got status %d body %q, want 200 ok", res.Status, res.Body)
			}
			if res.Retries != 2 {
				t.Fatalf("retries = %d, want 2", res.Retries)
			}
			st := c.Stats()
			if st.RetriesByTrigger[strconv.Itoa(status)] != 2 {
				t.Fatalf("RetriesByTrigger = %v, want 2 under %d", st.RetriesByTrigger, status)
			}
		})
	}
}

func TestPostNeverRetriesClientErrors(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusUnprocessableEntity} {
		t.Run(strconv.Itoa(status), func(t *testing.T) {
			var calls int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				atomic.AddInt64(&calls, 1)
				w.WriteHeader(status)
				fmt.Fprint(w, "nope")
			}))
			defer srv.Close()

			c := New(fastConfig())
			res, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil)
			if err != nil {
				t.Fatalf("Post: %v", err)
			}
			if res.Status != status {
				t.Fatalf("status = %d, want %d", res.Status, status)
			}
			if got := atomic.LoadInt64(&calls); got != 1 {
				t.Fatalf("server saw %d calls, want exactly 1 — %d must never be retried", got, status)
			}
			if res.Retries != 0 {
				t.Fatalf("retries = %d, want 0", res.Retries)
			}
		})
	}
}

func TestPostRetriesTransportErrors(t *testing.T) {
	// A server that closes immediately yields connection-refused
	// transport errors on every attempt.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()

	cfg := fastConfig()
	cfg.MaxAttempts = 3
	c := New(cfg)
	_, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	st := c.Stats()
	if st.RetriesByTrigger["transport"] != 3 {
		t.Fatalf("transport retries = %d, want 3 (every attempt failed)", st.RetriesByTrigger["transport"])
	}
	if st.Exhausted != 1 {
		t.Fatalf("exhausted = %d, want 1", st.Exhausted)
	}
}

func TestPostHonorsRetryAfter(t *testing.T) {
	var calls int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	cfg := fastConfig()
	cfg.RetryAfterCap = 80 * time.Millisecond // hint of 1s is capped here
	c := New(cfg)
	start := time.Now()
	res, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.Status)
	}
	// The wait must reflect the (capped) hint, not the ~1ms backoff…
	if elapsed < 70*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 70ms (capped Retry-After honored)", elapsed)
	}
	// …and the cap must have kept it well under the raw 1s hint.
	if elapsed > 700*time.Millisecond {
		t.Fatalf("elapsed = %v, want << 1s (RetryAfterCap applied)", elapsed)
	}
}

func TestPostChecksBody(t *testing.T) {
	var calls int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1) == 1 {
			fmt.Fprint(w, "garbled")
			return
		}
		fmt.Fprint(w, "good")
	}))
	defer srv.Close()

	cfg := fastConfig()
	cfg.CheckBody = func(status int, body []byte) error {
		if string(body) != "good" {
			return fmt.Errorf("bad body %q", body)
		}
		return nil
	}
	c := New(cfg)
	res, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if string(res.Body) != "good" {
		t.Fatalf("body = %q, want \"good\"", res.Body)
	}
	if c.Stats().RetriesByTrigger["body"] != 1 {
		t.Fatalf("body retries = %v, want 1", c.Stats().RetriesByTrigger)
	}
}

func TestPostSetsDeadlineHeader(t *testing.T) {
	var gotHeader atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get("X-Deadline-Ms"))
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c := New(fastConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Post(ctx, srv.URL, "text/plain", []byte("x"), nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	raw, _ := gotHeader.Load().(string)
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("X-Deadline-Ms = %q, want an integer: %v", raw, err)
	}
	if ms <= 0 || ms > 30_000 {
		t.Fatalf("X-Deadline-Ms = %d, want in (0, 30000]", ms)
	}
}

func TestPostBreakerFailsFastThenRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	cfg := fastConfig()
	cfg.MaxAttempts = 2
	cfg.Breaker = BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond}
	c := New(cfg)

	// Two failing attempts in one call trip the per-backend breaker.
	if _, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("x"), nil); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if got := c.BreakerFor(srv.URL).State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}

	// Backend recovers; after the cooldown a probe succeeds and the
	// breaker closes.
	healthy.Store(true)
	time.Sleep(3 * cfg.Breaker.Cooldown)
	cfg2ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Post(cfg2ctx, srv.URL, "text/plain", []byte("x"), nil)
	if err != nil {
		t.Fatalf("Post after recovery: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.Status)
	}
	if got := c.BreakerFor(srv.URL).State(); got != BreakerClosed {
		t.Fatalf("breaker state after success = %v, want closed", got)
	}
}

func TestPostHedgesSlowAttempts(t *testing.T) {
	var calls int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1) == 1 {
			// First attempt hangs until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, "hedged")
	}))
	defer srv.Close()
	defer close(release)

	cfg := fastConfig()
	cfg.HedgeAfter = 10 * time.Millisecond
	c := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Post(ctx, srv.URL, "text/plain", []byte("x"), nil)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if string(res.Body) != "hedged" {
		t.Fatalf("body = %q, want \"hedged\"", res.Body)
	}
	if !res.Hedged || res.Attempts < 2 {
		t.Fatalf("Hedged=%v Attempts=%d, want hedged with >= 2 attempts", res.Hedged, res.Attempts)
	}
	if c.Stats().Hedges != 1 {
		t.Fatalf("stats hedges = %d, want 1", c.Stats().Hedges)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a := New(Config{Seed: 7, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	b := New(Config{Seed: 7, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	for n := 1; n <= 8; n++ {
		da, db := a.backoff(n), b.backoff(n)
		if da != db {
			t.Fatalf("round %d: same seed gave %v vs %v", n, da, db)
		}
		if da <= 0 || da > 100*time.Millisecond {
			t.Fatalf("round %d: backoff %v out of (0, MaxBackoff]", n, da)
		}
	}
	// A different seed must diverge somewhere in the sequence.
	cdiff := New(Config{Seed: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	same := true
	for n := 1; n <= 8; n++ {
		if a.backoff(n) != cdiff.backoff(n) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 8-round backoff sequences")
	}
}

func TestPostCtxCancelledMidBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := fastConfig()
	cfg.RetryAfterCap = time.Minute
	c := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Post(ctx, srv.URL, "text/plain", []byte("x"), nil)
	if err == nil {
		t.Fatal("Post succeeded, want ctx-done error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx cancellation took %v, want prompt exit from backoff sleep", elapsed)
	}
}
