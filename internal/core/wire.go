package core

// The allocation service's wire format (npserve, PR 5). A WireRequest
// describes one thread-set allocation over HTTP/JSON — each thread as
// either masm assembly source or a deterministic progen spec — and a
// WireResponse reports the resulting grants, costs and engine counters.
// The types live here rather than in internal/serve so that clients
// (cmd/nploadgen, tests, external tools) can speak the protocol without
// importing the server.
//
// Canonicalization: CanonicalKey hashes the *materialized* thread
// bodies (ir.Func.Format()) together with the fields that change the
// allocation result (mode, nreg, nthd). Workers, timeout, priority and
// the dump flag are deliberately excluded: the engine's PR-1
// determinism contract makes the allocation bit-identical for every
// worker count, so two requests differing only in those fields may
// safely share one engine invocation.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"npra/internal/ir"
	"npra/internal/masm"
	"npra/internal/progen"
)

// Wire limits: requests beyond these bounds are rejected with ErrInvalid
// before any engine work. They bound the cost of a single request, not
// the machine model (NReg beyond 1024 registers has no hardware analog).
const (
	WireMaxThreads   = 16
	WireMaxAsmBytes  = 64 << 10
	WireMaxNReg      = 1024
	WireMaxNThd      = 64
	WireMaxTimeoutMS = 600_000
	WireMaxDepth     = 4
	WireMaxBodyLen   = 32
	WireMaxTripCnt   = 8
	WireMaxVars      = 32
	WireMaxWindow    = 4096
	WireMaxStoreBase = 1 << 20
)

// WireProgen is a deterministic generated-program spec: the same spec
// always materializes the same function (progen.FromSeed). Zero-valued
// shape fields take the defaults noted on each; all programs drawn this
// way are structurally halting (counted loops only).
type WireProgen struct {
	Seed int64 `json:"seed"`
	// Shape selects an adversarial generator family ("trampoline",
	// "boundary", "palette", "nearcollision"); empty means the default
	// structured generator. All shapes stay structurally halting.
	Shape      string  `json:"shape,omitempty"`
	MaxDepth   int     `json:"max_depth,omitempty"`    // default 2, 1..4
	MaxBodyLen int     `json:"max_body_len,omitempty"` // default 6, 1..32
	MaxTripCnt int     `json:"max_trip_cnt,omitempty"` // default 4, 1..8
	MaxVars    int     `json:"max_vars,omitempty"`     // default 8, 2..32
	CSBDensity float64 `json:"csb_density,omitempty"`  // default 0.2, 0..1
	// StoreWindow/StoreBase bound the absolute store addresses, so a
	// request can give each thread a disjoint memory window.
	StoreWindow int64 `json:"store_window,omitempty"` // default 64, 4..4096
	StoreBase   int64 `json:"store_base,omitempty"`   // 0..1<<20
}

// config validates the spec and returns the progen configuration with
// defaults applied.
func (p *WireProgen) config() (progen.StructuredConfig, error) {
	cfg := progen.StructuredConfig{
		MaxDepth: 2, MaxBodyLen: 6, MaxTripCnt: 4, MaxVars: 8,
		CSBDensity: 0.2, StoreWindow: 64,
	}
	set := func(dst *int, v, max int, name string) error {
		if v == 0 {
			return nil
		}
		if v < 1 || v > max {
			return invalidf("progen %s = %d out of range [1, %d]", name, v, max)
		}
		*dst = v
		return nil
	}
	if err := set(&cfg.MaxDepth, p.MaxDepth, WireMaxDepth, "max_depth"); err != nil {
		return cfg, err
	}
	if err := set(&cfg.MaxBodyLen, p.MaxBodyLen, WireMaxBodyLen, "max_body_len"); err != nil {
		return cfg, err
	}
	if err := set(&cfg.MaxTripCnt, p.MaxTripCnt, WireMaxTripCnt, "max_trip_cnt"); err != nil {
		return cfg, err
	}
	if p.MaxVars != 0 {
		if p.MaxVars < 2 || p.MaxVars > WireMaxVars {
			return cfg, invalidf("progen max_vars = %d out of range [2, %d]", p.MaxVars, WireMaxVars)
		}
		cfg.MaxVars = p.MaxVars
	}
	if p.CSBDensity != 0 {
		if p.CSBDensity < 0 || p.CSBDensity > 1 {
			return cfg, invalidf("progen csb_density = %v out of range [0, 1]", p.CSBDensity)
		}
		cfg.CSBDensity = p.CSBDensity
	}
	if p.StoreWindow != 0 {
		if p.StoreWindow < 4 || p.StoreWindow > WireMaxWindow {
			return cfg, invalidf("progen store_window = %d out of range [4, %d]", p.StoreWindow, WireMaxWindow)
		}
		cfg.StoreWindow = p.StoreWindow
	}
	if p.StoreBase < 0 || p.StoreBase > WireMaxStoreBase {
		return cfg, invalidf("progen store_base = %d out of range [0, %d]", p.StoreBase, WireMaxStoreBase)
	}
	cfg.StoreBase = p.StoreBase
	if !progen.ValidShape(progen.Shape(p.Shape)) {
		return cfg, invalidf("progen shape %q (want one of %v or empty)", p.Shape, progen.Shapes())
	}
	return cfg, nil
}

// WireThread describes one thread's code: exactly one of Asm (masm
// assembly source) or Progen must be set.
type WireThread struct {
	Name   string      `json:"name,omitempty"`
	Asm    string      `json:"asm,omitempty"`
	Progen *WireProgen `json:"progen,omitempty"`
}

// WireRequest is one allocation request.
type WireRequest struct {
	// Mode selects the allocator: "ara" (the default; one code body per
	// thread) or "sra" (the same body on NThd threads; Threads must then
	// hold exactly one entry).
	Mode string `json:"mode,omitempty"`
	NReg int    `json:"nreg"`
	NThd int    `json:"nthd,omitempty"`

	Threads []WireThread `json:"threads"`

	// Workers and TimeoutMS tune the engine run without changing its
	// result (PR-1 determinism / PR-2 deadline contract); both are
	// excluded from the canonical key.
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Dump asks for the rewritten physical-register assembly of every
	// thread in the response (response-shaping only; not canonical).
	Dump bool `json:"dump,omitempty"`

	// Priority is the admission class the serving layer's load shedder
	// routes on: "low", "normal" (the default when empty) or "high".
	// Under queue pressure low-priority work is refused first, normal
	// next; high is only refused at the hard capacity bound. Excluded
	// from the canonical key — priority shapes admission, never the
	// allocation result.
	Priority string `json:"priority,omitempty"`
}

// Validate checks the request's scalar fields against the wire limits.
// Thread bodies are checked by Funcs, which materializes them.
func (r *WireRequest) Validate() error {
	switch r.Mode {
	case "", "ara", "sra":
	default:
		return invalidf("mode %q (want \"ara\" or \"sra\")", r.Mode)
	}
	if r.NReg < 1 || r.NReg > WireMaxNReg {
		return invalidf("nreg = %d out of range [1, %d]", r.NReg, WireMaxNReg)
	}
	if len(r.Threads) == 0 {
		return invalidf("no threads")
	}
	if len(r.Threads) > WireMaxThreads {
		return invalidf("%d threads exceeds the limit of %d", len(r.Threads), WireMaxThreads)
	}
	if r.Mode == "sra" {
		if len(r.Threads) != 1 {
			return invalidf("sra takes exactly one thread body, got %d", len(r.Threads))
		}
		if r.NThd < 1 || r.NThd > WireMaxNThd {
			return invalidf("sra nthd = %d out of range [1, %d]", r.NThd, WireMaxNThd)
		}
	} else if r.NThd != 0 {
		return invalidf("nthd is only meaningful with mode \"sra\"")
	}
	if r.TimeoutMS < 0 || r.TimeoutMS > WireMaxTimeoutMS {
		return invalidf("timeout_ms = %d out of range [0, %d]", r.TimeoutMS, WireMaxTimeoutMS)
	}
	switch r.Priority {
	case "", "low", "normal", "high":
	default:
		return invalidf("priority %q (want \"low\", \"normal\" or \"high\")", r.Priority)
	}
	if r.Workers < 0 {
		return invalidf("workers = %d negative", r.Workers)
	}
	for i, t := range r.Threads {
		if (t.Asm == "") == (t.Progen == nil) {
			return invalidf("thread %d: exactly one of asm or progen must be set", i)
		}
		if len(t.Asm) > WireMaxAsmBytes {
			return invalidf("thread %d: asm source %d bytes exceeds the limit of %d", i, len(t.Asm), WireMaxAsmBytes)
		}
	}
	return nil
}

// CompiledBodies caches the expensive half of Funcs: assembling masm
// source or generating a progen spec into a built ir.Func. GetOrCompile
// returns the function cached under key, calling build on a miss (build
// errors are returned, never cached). A returned function is shared
// across requests and goroutines, so callers must treat it as immutable
// — which every engine path already does: ir.Func is read-only after
// Build. internal/funccache provides the bounded implementation.
type CompiledBodies interface {
	GetOrCompile(key string, build func() (*ir.Func, error)) (*ir.Func, error)
}

// bodySpec returns the thread's compiled-body cache key and its compile
// closure. The key covers everything build reads: the body kind, the
// effective function name (cached funcs are immutable, so the name must
// be baked in before caching, not patched after) and the full source or
// spec. The closure produces the fully-named function in one step.
func (t *WireThread) bodySpec(i int) (key string, build func() (*ir.Func, error)) {
	if t.Asm != "" {
		key = fmt.Sprintf("asm\x00%s\x00%s", t.Name, t.Asm)
		return key, func() (*ir.Func, error) {
			f, err := masm.Assemble(t.Asm)
			if err != nil {
				return nil, fmt.Errorf("%w: thread %d: %v", ErrInvalid, i, err)
			}
			if t.Name != "" {
				f.Name = t.Name
			}
			return f, nil
		}
	}
	p := t.Progen
	key = fmt.Sprintf("progen\x00%s\x00%s\x00%d|%d|%d|%d|%d|%v|%d|%d",
		t.Name, p.Shape, p.Seed, p.MaxDepth, p.MaxBodyLen, p.MaxTripCnt, p.MaxVars,
		p.CSBDensity, p.StoreWindow, p.StoreBase)
	return key, func() (*ir.Func, error) {
		cfg, err := p.config()
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w", i, err)
		}
		f, err := progen.FromSeedShape(progen.Shape(p.Shape), p.Seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w: %v", i, ErrInvalid, err)
		}
		if t.Name != "" {
			f.Name = t.Name
		} else {
			f.Name = fmt.Sprintf("progen%d", p.Seed)
		}
		return f, nil
	}
}

// Funcs validates the request and materializes every thread body into a
// built ir.Func (assembling masm source, generating progen specs). All
// errors wrap ErrInvalid: a body that does not assemble is the caller's
// fault, not the engine's.
func (r *WireRequest) Funcs() ([]*ir.Func, error) {
	return r.FuncsCached(nil)
}

// FuncsCached is Funcs through a compiled-body cache: thread bodies
// already materialized for an earlier request come back without
// re-parsing or re-generating. A nil cache compiles everything fresh.
// Either way the returned functions are body-for-body identical — the
// cache key covers the full source/spec and effective name.
func (r *WireRequest) FuncsCached(bodies CompiledBodies) ([]*ir.Func, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	funcs := make([]*ir.Func, len(r.Threads))
	for i := range r.Threads {
		key, build := r.Threads[i].bodySpec(i)
		var f *ir.Func
		var err error
		if bodies == nil {
			f, err = build()
		} else {
			f, err = bodies.GetOrCompile(key, build)
		}
		if err != nil {
			return nil, err
		}
		funcs[i] = f
	}
	return funcs, nil
}

// FuncKey is the per-function canonical hash: sha256 over the
// materialized body text (ir.Func.Format covers the name, every
// instruction and every register the function touches). Everything the
// engine derives per function — analysis, bounds, the context chain,
// each (pr,sr) Solve — is a pure function of this text and the
// hardware-independent allocator mode, so FuncKey is the invalidation
// key for function-granular caches (internal/funccache): equal keys
// mean bit-identical per-function artifacts.
func FuncKey(f *ir.Func) string {
	h := sha256.Sum256([]byte(f.Format()))
	return hex.EncodeToString(h[:])
}

// CanonicalKey hashes the result-determining content of the request:
// mode, register budget, thread count and the per-function keys
// (FuncKey) of the materialized thread bodies, in order. funcs must be
// the slice returned by Funcs for this request. Requests with equal
// keys produce bit-identical allocations (for any Workers value), so a
// serving layer may answer them from one engine invocation. The
// request key is composed from the same per-function hashes the
// function cache is keyed by: the request level dedups whole identical
// requests, the function level reuses bodies across different ones.
func (r *WireRequest) CanonicalKey(funcs []*ir.Func) string {
	return r.CanonicalKeyBy(funcs, FuncKey)
}

// CanonicalKeyBy is CanonicalKey with a caller-supplied per-function
// key function. key must agree with FuncKey; passing a memoized
// variant (e.g. funccache.Cache.FuncKey, which caches by pointer
// identity) lets a serving layer skip re-Formatting bodies it already
// hashed on a previous request.
func (r *WireRequest) CanonicalKeyBy(funcs []*ir.Func, key func(*ir.Func) string) string {
	h := sha256.New()
	mode := r.Mode
	if mode == "" {
		mode = "ara"
	}
	fmt.Fprintf(h, "%s|%d|%d\n", mode, r.NReg, r.NThd)
	for _, f := range funcs {
		io.WriteString(h, key(f))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WireThreadAlloc is one thread's slice of a WireResponse.
type WireThreadAlloc struct {
	Name       string `json:"name"`
	PR         int    `json:"pr"`
	SR         int    `json:"sr"`
	Cost       int    `json:"cost"`
	Moves      int    `json:"moves"` // instructions actually inserted by the rewriter
	LiveRanges int    `json:"live_ranges"`
	PrivBase   int    `json:"priv_base"`
	Asm        string `json:"asm,omitempty"` // rewritten physical-register assembly (Dump only)
}

// WirePhases mirrors intra.PhaseStats for the wire.
type WirePhases struct {
	BuildNS         int64 `json:"build_ns"`
	MergeNS         int64 `json:"merge_ns"`
	RepairNS        int64 `json:"repair_ns"`
	ColorNS         int64 `json:"color_ns"`
	RewriteNS       int64 `json:"rewrite_ns"`
	RewriteCachedNS int64 `json:"rewrite_cached_ns"`
	ChainSteps      int   `json:"chain_steps"`
	Trials          int   `json:"trials"`
}

// WireResponse is the engine-side half of an allocation response (the
// serving layer wraps it with transport-level fields: shared/cached
// flags, batch size, elapsed time).
type WireResponse struct {
	NReg           int               `json:"nreg"`
	SGR            int               `json:"sgr"`
	TotalRegisters int               `json:"total_registers"`
	Threads        []WireThreadAlloc `json:"threads"`

	// Degraded marks a static-partition fallback result (PR-2): still a
	// verified, semantics-preserving allocation, but without the paper's
	// register-sharing win. Cause carries the failure that triggered it.
	Degraded bool   `json:"degraded"`
	Cause    string `json:"cause,omitempty"`

	CacheHits   int        `json:"cache_hits"`
	CacheMisses int        `json:"cache_misses"`
	Phases      WirePhases `json:"phases"`
}

// Wire converts an Allocation into its wire form. With dump set, each
// thread carries its rewritten assembly (ir.Func.Format output, which
// ir.Parse round-trips).
func (al *Allocation) Wire(dump bool) *WireResponse {
	resp := &WireResponse{
		NReg:           al.NReg,
		SGR:            al.SGR,
		TotalRegisters: al.TotalRegisters(),
		Degraded:       al.Degraded,
		CacheHits:      al.SolveCache.Hits,
		CacheMisses:    al.SolveCache.Misses,
		Phases: WirePhases{
			BuildNS:         al.Phases.BuildNS,
			MergeNS:         al.Phases.MergeNS,
			RepairNS:        al.Phases.RepairNS,
			ColorNS:         al.Phases.ColorNS,
			RewriteNS:       al.Phases.RewriteNS,
			RewriteCachedNS: al.Phases.RewriteCachedNS,
			ChainSteps:      al.Phases.ChainSteps,
			Trials:          al.Phases.Trials,
		},
	}
	if al.Cause != nil {
		resp.Cause = al.Cause.Error()
	}
	for _, t := range al.Threads {
		wt := WireThreadAlloc{
			Name:       t.Name,
			PR:         t.PR,
			SR:         t.SR,
			Cost:       t.Cost,
			Moves:      t.Stats.Added(),
			LiveRanges: t.LiveRanges,
			PrivBase:   t.PrivBase,
		}
		if dump {
			wt.Asm = t.F.Format()
		}
		resp.Threads = append(resp.Threads, wt)
	}
	return resp
}

// WireError is the typed error body every non-2xx npserve response
// carries: Kind routes programmatically (the string forms of the error
// taxonomy plus the serving layer's own "overload" and "draining"),
// Error is human-readable detail.
type WireError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// ErrorKind maps a taxonomy error onto its wire kind string.
func ErrorKind(err error) string {
	switch {
	case errors.Is(err, ErrInvalid):
		return "invalid"
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	default:
		return "internal"
	}
}
