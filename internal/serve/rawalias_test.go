package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and returns the raw exposition text.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestRawCacheProfilesDoNotAlias is the NReg-normalization regression:
// byte-identical thread bodies submitted under different hardware
// profiles (explicit nreg 32, explicit nreg 48, and nreg omitted — the
// server default) are distinct raw requests and must never serve each
// other's cached result. Each profile is posted twice, so the second
// round is answered from the raw-request LRU — the exact path a
// normalization bug would corrupt.
func TestRawCacheProfilesDoNotAlias(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	threads := `"threads":[{"progen":{"seed":9,"shape":"nearcollision"}}]`
	profiles := []struct {
		body string
		nreg int
	}{
		{fmt.Sprintf(`{"nreg":32,%s}`, threads), 32},
		{fmt.Sprintf(`{"nreg":48,%s}`, threads), 48},
		{fmt.Sprintf(`{%s}`, threads), 128}, // omitted: server default
	}
	for round := 0; round < 2; round++ {
		for i, p := range profiles {
			out := mustOK(t, ts.URL, p.body)
			if out.NReg != p.nreg {
				t.Fatalf("round %d profile %d: nreg = %d, want %d (cross-profile aliasing)", round, i, out.NReg, p.nreg)
			}
			if out.SGR > p.nreg {
				t.Fatalf("round %d profile %d: sgr %d exceeds the register file %d", round, i, out.SGR, p.nreg)
			}
		}
	}
	st := s.raw.stats()
	if st.Misses != 3 || st.Hits != 3 || st.Entries != 3 {
		t.Errorf("raw stats = %+v, want 3 misses then 3 hits over 3 distinct entries", st)
	}

	// The e2e metrics contract: all four raw-cache counters are on the
	// exposition, and the entry count agrees with the profile count.
	text := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		"npserve_raw_cache_hits 3",
		"npserve_raw_cache_misses 3",
		"npserve_raw_cache_evictions 0",
		"npserve_raw_cache_entries 3",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestRawCacheEvictionMetric drives the raw LRU over a 2-entry bound
// and checks the new eviction counter moves in lockstep in both the
// stats snapshot and the exposition.
func TestRawCacheEvictionMetric(t *testing.T) {
	s, ts := newTestServer(t, Config{RawCacheEntries: 2})
	for seed := 1; seed <= 4; seed++ {
		mustOK(t, ts.URL, fmt.Sprintf(`{"nreg":32,"threads":[{"progen":{"seed":%d,"shape":"palette"}}]}`, seed))
	}
	st := s.raw.stats()
	if st.Evictions != 2 || st.Entries != 2 {
		t.Errorf("raw stats = %+v, want 2 evictions with 2 resident entries", st)
	}
	if text := scrapeMetrics(t, ts.URL); !strings.Contains(text, "npserve_raw_cache_evictions 2\n") {
		t.Error("metrics missing npserve_raw_cache_evictions 2")
	}
}
