// Package npra_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (run them with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out and micro-benchmarks of the allocator
// phases. The custom metrics attached via b.ReportMetric carry the
// numbers the paper reports (register savings, speedups, move overhead).
package npra_test

import (
	"testing"

	"npra/internal/bench"
	"npra/internal/bitset"
	"npra/internal/chaitin"
	"npra/internal/core"
	"npra/internal/estimate"
	"npra/internal/experiments"
	"npra/internal/ig"
	"npra/internal/intra"
	"npra/internal/ir"
	"npra/internal/liveness"
	"npra/internal/sim"
)

const benchPackets = 48

// BenchmarkTable1 regenerates the benchmark property table (static
// analysis + 4-thread baseline simulation for every kernel).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			avgCTX := 0.0
			for _, r := range rows {
				avgCTX += r.CTXPct
			}
			b.ReportMetric(avgCTX/float64(len(rows)), "avg-ctx-%")
		}
	}
}

// BenchmarkFigure14 regenerates the SRA register-saving figure; the
// reported metric is the suite-average saving (paper: 24%).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure14(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(experiments.AverageSaving(rows), "avg-saving-%")
		}
	}
}

// BenchmarkTable2 regenerates the extreme-case move overhead table; the
// metric is the worst overhead across the suite (paper: mostly <= 10%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for _, r := range rows {
				if r.MovePct > worst {
					worst = r.MovePct
				}
			}
			b.ReportMetric(worst, "worst-move-%")
		}
	}
}

// BenchmarkTable3 regenerates the three ARA scenarios; the metric is the
// mean critical-thread speedup (paper: 18-24%).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scs, err := experiments.Table3(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sum, n := 0.0, 0
			for _, sc := range scs {
				for _, t := range sc.Threads {
					if t.Critical {
						sum += t.SpeedupPct
						n++
					}
				}
			}
			b.ReportMetric(sum/float64(n), "critical-speedup-%")
		}
	}
}

// BenchmarkAblationEstimation compares PR-first vs joint bound estimation.
func BenchmarkAblationEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEstimation(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saved := 0
			for _, r := range rows {
				saved += r.PrivateSaved4Threads
			}
			b.ReportMetric(float64(saved), "private-regs-saved")
		}
	}
}

// BenchmarkAblationMoveElim measures the unnecessary-move elimination.
func BenchmarkAblationMoveElim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMoveElim(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			with, without := 0, 0
			for _, r := range rows {
				with += r.MovesWith
				without += r.MovesWithout
			}
			b.ReportMetric(float64(without-with), "moves-eliminated")
		}
	}
}

// BenchmarkAblationSRA compares the exact SRA sweep with the ARA greedy.
func BenchmarkAblationSRA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSRA(benchPackets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpillVsMove sweeps register budgets on md5.
func BenchmarkAblationSpillVsMove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSpillVsMove("md5", benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].SpillCycles, "tightest-spill-cyc/iter")
		}
	}
}

// BenchmarkAblationLatency sweeps memory latency on scenario S1.
func BenchmarkAblationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLatency(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].CriticalSpeedup, "speedup-at-40cyc-%")
		}
	}
}

// --- allocator phase micro-benchmarks (md5: the largest kernel) ---

func md5Func(b *testing.B) *ir.Func {
	bb, err := bench.Get("md5")
	if err != nil {
		b.Fatal(err)
	}
	return bb.Gen(benchPackets)
}

func BenchmarkLiveness(b *testing.B) {
	f := md5Func(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liveness.Compute(f)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	f := md5Func(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ig.Analyze(f)
	}
}

func BenchmarkEstimate(b *testing.B) {
	a := ig.Analyze(md5Func(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate.Compute(a)
	}
}

func BenchmarkIntraSolveMin(b *testing.B) {
	f := md5Func(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al := intra.MustNew(f)
		bd := al.Bounds()
		if _, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdSolve measures the cold path the warm-start machinery
// optimizes: estimation plus the full chain derivation down to the
// minimum budget, with nothing memoized (a fresh allocator per
// iteration over a shared analysis, so analysis cost is excluded).
func BenchmarkColdSolve(b *testing.B) {
	a := ig.Analyze(md5Func(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := intra.NewFromAnalysis(a)
		if err != nil {
			b.Fatal(err)
		}
		bd := al.Bounds()
		if _, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallestLast measures the smallest-last ordering kernel on
// the md5 global interference graph (the dominant cost inside bound
// estimation).
func BenchmarkSmallestLast(b *testing.B) {
	a := ig.Analyze(md5Func(b))
	members := bitset.New(a.NumVars)
	for v := 0; v < a.NumVars; v++ {
		if a.Alive[v] {
			members.Add(v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ord := a.GIG.SmallestLastOrder(members); len(ord) == 0 {
			b.Fatal("empty order")
		}
	}
}

func BenchmarkChaitin32(b *testing.B) {
	f := md5Func(b)
	phys := make([]ir.Reg, 32)
	for i := range phys {
		phys[i] = ir.Reg(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chaitin.Allocate(f, chaitin.Options{
			Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterThreadARA(b *testing.B) {
	mk := func() []*ir.Func {
		var out []*ir.Func
		for _, n := range []string{"md5", "md5", "fir2dim", "fir2dim"} {
			bb, _ := bench.Get(n)
			out = append(out, bb.Gen(benchPackets))
		}
		return out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := core.AllocateARA(mk(), core.Config{NReg: 128})
		if err != nil {
			b.Fatal(err)
		}
		if err := alloc.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateARA measures the full ARA allocation (scenario S1 at a
// pressure budget, so the greedy loop actually iterates) serial vs
// parallel. The hit-rate metric records the Solve-point cache activity —
// identical for every worker count by construction.
func BenchmarkAllocateARA(b *testing.B) {
	mk := func() []*ir.Func {
		var out []*ir.Func
		for _, n := range []string{"md5", "md5", "fir2dim", "fir2dim"} {
			bb, _ := bench.Get(n)
			out = append(out, bb.Gen(benchPackets))
		}
		return out
	}
	const pressureNReg = 56 // forces greedy reduction rounds at benchPackets
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"j1", 1}, {"jmax", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			var cache intra.CacheStats
			for i := 0; i < b.N; i++ {
				alloc, err := core.AllocateARA(mk(), core.Config{NReg: pressureNReg, Workers: cfg.workers})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					cache = alloc.SolveCache
				}
			}
			b.ReportMetric(100*cache.HitRate(), "cache-hit-%")
		})
	}
}

// BenchmarkSolveCached measures a repeated Solve at the same budget: the
// first call prices the point, every later call is a cache hit.
func BenchmarkSolveCached(b *testing.B) {
	al := intra.MustNew(md5Func(b))
	bd := al.Bounds()
	if _, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*al.CacheStats().HitRate(), "cache-hit-%")
}

func BenchmarkSimulator(b *testing.B) {
	bb, err := bench.Get("md5")
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := core.AllocateSRA(bb.Gen(benchPackets), 4, core.Config{NReg: 128})
	if err != nil {
		b.Fatal(err)
	}
	var threads []*sim.Thread
	for _, t := range alloc.Threads {
		threads = append(threads, &sim.Thread{F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(threads, sim.Config{NReg: 128, MemWords: bench.MemWords})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Cycles), "sim-cycles")
		}
	}
}

// BenchmarkAblationWeighting compares the static and loop-weighted move
// objectives across the suite.
func BenchmarkAblationWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWeighting(benchPackets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterScaling runs the multi-PU shared-memory scaling study.
func BenchmarkClusterScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ClusterScaling(benchPackets, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "8pu-contended-speedup")
		}
	}
}
