// Package report renders human-readable and Graphviz views of the
// analyses: per-function statistics tables, and DOT exports of the CFG,
// the interference graphs (GIG/BIG) and the non-switch-region structure.
// cmd/npstat is the CLI front end.
package report

import (
	"fmt"
	"strings"

	"npra/internal/estimate"
	"npra/internal/ig"
	"npra/internal/ir"
	"npra/internal/loops"
)

// Text renders the statistics block for one function.
func Text(f *ir.Func) string {
	a := ig.Analyze(f)
	li, liErr := loops.Compute(f)
	st := f.Stats()

	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s\n", f.Name)
	est, estErr := estimate.Compute(a)
	if estErr != nil {
		fmt.Fprintf(&sb, "  estimation failed: %v\n", estErr)
		est = &estimate.Estimate{}
	}
	fmt.Fprintf(&sb, "  instructions     %d (%d blocks, %d branches)\n", st.Instructions, st.Blocks, st.Branches)
	fmt.Fprintf(&sb, "  context switches %d (%.1f%% of instructions)\n",
		st.CSBs, 100*float64(st.CSBs)/float64(st.Instructions))
	fmt.Fprintf(&sb, "  live ranges      %d (%d boundary, %d internal)\n",
		a.LiveRanges(), a.BoundaryNodes().Count(), a.InternalNodes().Count())
	fmt.Fprintf(&sb, "  NSRs             %d (avg %.1f instructions)\n", a.NSR.NumRegions, a.NSR.AvgSize())
	fmt.Fprintf(&sb, "  pressure         RegPmax=%d RegPCSBmax=%d\n", est.MinR, est.MinPR)
	fmt.Fprintf(&sb, "  move-free demand MaxR=%d MaxPR=%d (SR=%d)\n", est.MaxR, est.MaxPR, est.MaxSR())
	if liErr != nil {
		fmt.Fprintf(&sb, "  loop analysis failed: %v\n", liErr)
		return sb.String()
	}
	maxDepth := 0
	for _, d := range li.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Fprintf(&sb, "  loops            %d headers, max nesting %d\n", len(li.Headers), maxDepth)
	return sb.String()
}

// DotCFG renders the block-level control-flow graph, annotated with loop
// depth and the context-switch instructions each block contains.
func DotCFG(f *ir.Func) string {
	li, liErr := loops.Compute(f)
	if liErr != nil {
		// Render the CFG without loop annotations rather than failing:
		// a zero Info reports depth 0 for every block.
		li = &loops.Info{F: f, IDom: make([]int, len(f.Blocks)), Depth: make([]int, len(f.Blocks))}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=monospace];\n", f.Name+"_cfg")
	for i, b := range f.Blocks {
		csb := 0
		for k := range b.Instrs {
			if b.Instrs[k].IsCSB() {
				csb++
			}
		}
		label := fmt.Sprintf("%s\\n%d instrs, %d csb", b.Label, len(b.Instrs), csb)
		attrs := ""
		if li.Depth[i] > 0 {
			label += fmt.Sprintf("\\nloop depth %d", li.Depth[i])
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"%s];\n", i, label, attrs)
	}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "  b%d -> b%d;\n", i, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotInterference renders the GIG; boundary nodes are drawn filled, and
// edges that are also boundary interference (BIG edges) are drawn bold.
func DotInterference(f *ir.Func) string {
	a := ig.Analyze(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  graph [overlap=false];\n  edge [dir=none];\n  node [fontname=monospace];\n", f.Name+"_gig")
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			continue
		}
		if a.Boundary[v] {
			fmt.Fprintf(&sb, "  v%d [style=filled, fillcolor=lightblue, label=\"v%d (boundary)\"];\n", v, v)
		} else {
			fmt.Fprintf(&sb, "  v%d;\n", v)
		}
	}
	for u := 0; u < a.NumVars; u++ {
		uu := u
		a.GIG.Neighbors(u).ForEach(func(w int) {
			if w <= uu {
				return
			}
			attr := ""
			if a.BIG.HasEdge(uu, w) {
				attr = " [penwidth=2]"
			}
			fmt.Fprintf(&sb, "  v%d -> v%d%s;\n", uu, w, attr)
		})
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotNSR renders the non-switch-region structure: one cluster per region
// with its instructions, and the context-switch boundaries as diamond
// nodes between them.
func DotNSR(f *ir.Func) string {
	a := ig.Analyze(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=monospace];\n", f.Name+"_nsr")
	// Group points per region.
	members := make([][]int, a.NSR.NumRegions)
	for p := 0; p < f.NumPoints(); p++ {
		if f.Instr(p).IsCSB() {
			continue
		}
		r := a.NSR.Region[p]
		members[r] = append(members[r], p)
	}
	for r, pts := range members {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"NSR %d (%d instrs)\";\n", r, r, len(pts))
		for _, p := range pts {
			fmt.Fprintf(&sb, "    p%d [label=%q];\n", p, f.Instr(p).String())
		}
		sb.WriteString("  }\n")
	}
	for _, p := range a.NSR.CSBs {
		fmt.Fprintf(&sb, "  p%d [shape=diamond, label=%q, style=filled, fillcolor=salmon];\n", p, f.Instr(p).String())
	}
	// Instruction-level edges.
	var succs []int
	for p := 0; p < f.NumPoints(); p++ {
		succs = f.PointSuccs(p, succs[:0])
		for _, q := range succs {
			fmt.Fprintf(&sb, "  p%d -> p%d;\n", p, q)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
