package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Network-level chaos sites. Where the Fire seams above inject faults
// *inside* the allocation pipeline, these name the failure modes a
// ChaosProxy injects *between* a client and npserve — the network
// pathologies a resilient client must absorb. They share the Site
// namespace so harnesses report pipeline and network faults uniformly.
const (
	// SiteNetReset kills the client connection mid-request (TCP RST via
	// SO_LINGER=0), modeling a dropped peer or an LB failing over.
	SiteNetReset Site = "net.reset"
	// SiteNetLatency delays the proxied request, modeling congestion.
	SiteNetLatency Site = "net.latency"
	// SiteNetTruncate declares the full Content-Length but writes only
	// part of the body, modeling a connection cut mid-response (the
	// client sees an unexpected EOF).
	SiteNetTruncate Site = "net.truncate"
	// SiteNetGarble corrupts response-body bytes while keeping the
	// declared length, modeling payload corruption that only body
	// validation can catch.
	SiteNetGarble Site = "net.garble"
	// SiteNetBurst replaces a run of consecutive responses with 503s,
	// modeling a backend brown-out.
	SiteNetBurst Site = "net.5xx_burst"
)

// NetSites lists the network chaos sites, for harnesses and reports.
func NetSites() []Site {
	return []Site{SiteNetReset, SiteNetLatency, SiteNetTruncate, SiteNetGarble, SiteNetBurst}
}

// ChaosConfig parameterizes a ChaosProxy. Rates are per-request
// probabilities in [0,1], drawn from a seeded deterministic PRNG: the
// same seed and request order produce the same fault sequence.
type ChaosConfig struct {
	// Seed drives the fault PRNG (default 1).
	Seed uint64

	// ResetRate is the probability of a TCP reset (SiteNetReset).
	ResetRate float64

	// LatencyRate and Latency inject a delay before proxying
	// (SiteNetLatency). The delay still forwards the request.
	LatencyRate float64
	Latency     time.Duration

	// TruncateRate cuts the response body short (SiteNetTruncate).
	TruncateRate float64

	// GarbleRate corrupts response-body bytes (SiteNetGarble).
	GarbleRate float64

	// BurstEvery and BurstLen schedule 5xx brown-outs (SiteNetBurst):
	// of every BurstEvery consecutive requests, the first BurstLen are
	// answered 503 without reaching the backend. 0 disables bursts.
	BurstEvery int
	BurstLen   int

	// Client issues the proxied requests (default: 30s-timeout client).
	Client *http.Client
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Latency <= 0 {
		c.Latency = 5 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// ChaosProxy is an http.Handler that forwards requests to a backend
// while deterministically injecting network faults. Put it behind an
// httptest.Server (or any listener) and point a client at it; scrape
// endpoints that must bypass chaos (e.g. /metrics) hit the backend
// directly.
type ChaosProxy struct {
	cfg    ChaosConfig
	target string

	seq atomic.Uint64 // request sequence number, drives determinism

	mu    sync.Mutex
	fired map[Site]int64
	total int64
}

// NewChaosProxy returns a proxy forwarding to target (a base URL like
// http://127.0.0.1:8080).
func NewChaosProxy(target string, cfg ChaosConfig) *ChaosProxy {
	return &ChaosProxy{
		cfg:    cfg.withDefaults(),
		target: target,
		fired:  make(map[Site]int64),
	}
}

// ChaosStats counts requests seen and faults fired per site.
type ChaosStats struct {
	Requests int64
	Fired    map[Site]int64
}

// Stats snapshots the proxy's fault counters.
func (p *ChaosProxy) Stats() ChaosStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := ChaosStats{Requests: p.total, Fired: make(map[Site]int64, len(p.fired))}
	for k, v := range p.fired {
		out.Fired[k] = v
	}
	return out
}

func (p *ChaosProxy) count(site Site) {
	p.mu.Lock()
	p.fired[site]++
	p.mu.Unlock()
}

// splitmix64 is the proxy's stateless PRNG step: a well-mixed function
// of the seed and the request sequence number, so fault decisions are
// reproducible and independent across draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// draw returns a uniform float64 in [0,1) for (seq, lane): each lane is
// an independent coin for one fault kind.
func (p *ChaosProxy) draw(seq uint64, lane uint64) float64 {
	return float64(splitmix64(p.cfg.Seed^(seq*0x100+lane))>>11) / float64(1<<53)
}

// ServeHTTP decides this request's fault and applies it. At most one
// fault fires per request (latency excepted — it composes with a clean
// forward); precedence: burst, reset, truncate/garble (applied after a
// successful forward), latency.
func (p *ChaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := p.seq.Add(1)
	p.mu.Lock()
	p.total++
	p.mu.Unlock()

	if p.cfg.BurstEvery > 0 && p.cfg.BurstLen > 0 &&
		int(seq%uint64(p.cfg.BurstEvery)) < p.cfg.BurstLen {
		p.count(SiteNetBurst)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"chaos: injected 5xx burst (request %d)","kind":"internal"}`, seq)
		return
	}
	if p.draw(seq, 1) < p.cfg.ResetRate {
		p.count(SiteNetReset)
		p.reset(w)
		return
	}
	if p.draw(seq, 2) < p.cfg.LatencyRate {
		p.count(SiteNetLatency)
		if err := chaosSleep(r.Context(), p.cfg.Latency); err != nil {
			return // client gave up mid-delay; nothing to answer
		}
	}

	status, header, body, err := p.forward(r)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":"chaos proxy: backend unreachable: %v","kind":"internal"}`, err)
		return
	}

	truncate := p.draw(seq, 3) < p.cfg.TruncateRate
	garble := !truncate && p.draw(seq, 4) < p.cfg.GarbleRate
	if garble && len(body) > 0 {
		p.count(SiteNetGarble)
		body = garbleBody(body, splitmix64(p.cfg.Seed^seq^0xC0FFEE))
	}

	for k, vs := range header { //lint:ignore detlint HTTP header write order is not observable to clients
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	// Declare the full length even when about to truncate: the client
	// must see a mid-body cut, not a clean short response.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if truncate && len(body) > 1 {
		p.count(SiteNetTruncate)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Returning with the declared length unmet makes the server cut
		// the connection; the client reads an unexpected EOF.
		return
	}
	w.Write(body)
}

// reset tears the client connection down with SO_LINGER=0 so the peer
// sees a TCP RST (or, failing hijack support, a bare close — still a
// transport error client-side).
func (p *ChaosProxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos proxy: ResponseWriter does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return // connection already gone; the client sees EOF anyway
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

// forward proxies r to the backend and returns the full response.
func (p *ChaosProxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading request body: %w", err)
	}
	url := p.target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range r.Header { //lint:ignore detlint HTTP header write order is not observable to the backend
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	header := make(http.Header, len(resp.Header))
	for k, vs := range resp.Header { //lint:ignore detlint HTTP header write order is not observable to clients
		if k == "Content-Length" {
			continue // re-derived from the (possibly garbled) body
		}
		for _, v := range vs {
			header.Add(k, v)
		}
	}
	return resp.StatusCode, header, blob, nil
}

// garbleBody flips a run of bytes in the middle of body, preserving
// length. The corruption is value-visible (XOR 0xA5) so JSON decoding
// or checksum validation catches it.
func garbleBody(body []byte, rnd uint64) []byte {
	out := make([]byte, len(body))
	copy(out, body)
	n := 4 + int(rnd%8)
	if n > len(out) {
		n = len(out)
	}
	start := int(splitmix64(rnd) % uint64(len(out)-n+1))
	for i := start; i < start+n; i++ {
		out[i] ^= 0xA5
	}
	return out
}

// chaosSleep waits d or until ctx is done.
func chaosSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
