// Command npserve runs the batched, deduplicating allocation service
// over HTTP/JSON.
//
// Endpoints:
//
//	POST /allocate  — one allocation request (see core.WireRequest);
//	                  identical requests share one engine invocation,
//	                  queued requests run batched over the worker pool
//	GET  /metrics   — request/latency histograms, singleflight and
//	                  batch counters, engine phase timings
//	GET  /healthz   — 200 while serving, 503 while draining
//
// On SIGTERM/SIGINT the server drains: in-flight requests finish, new
// ones are refused with 503, then the process exits.
//
// Usage:
//
//	npserve [-addr :8080] [-nreg 128] [-j N] [-queue 64] [-batch 4]
//	        [-cache 256] [-funccache-entries 256] [-bodycache-entries 1024]
//	        [-rewritecache-entries 1024] [-rawcache-entries 512]
//	        [-timeout 10s] [-max-timeout 60s] [-drain-timeout 30s]
//	        [-tenant-queue 16] [-tenant-weights heavy=3,light=1]
//	        [-shed-low 0.5] [-shed-normal 0.85]
//
// Admission is per-tenant fair (weighted deficit round robin over the
// X-Tenant header) with priority-aware shedding: past -shed-low of the
// backlog, requests with "priority":"low" are refused with 429; past
// -shed-normal, normal-priority requests follow; high priority is only
// refused at the hard -queue bound. 429/503 responses carry a
// Retry-After derived from the live backlog and observed service rate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"npra/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		nreg         = flag.Int("nreg", 128, "default register budget for requests that omit nreg")
		jobs         = flag.Int("j", runtime.GOMAXPROCS(0), "engine worker goroutines (the allocation is identical for any value)")
		queue        = flag.Int("queue", 64, "admission queue bound; beyond it requests get 429")
		batch        = flag.Int("batch", 4, "max queued requests per engine invocation (1 disables batching)")
		cache        = flag.Int("cache", 256, "completed-result cache entries (negative disables)")
		funcCache    = flag.Int("funccache-entries", 256, "function-level warm cache entries: distinct bodies whose analyses and Solve memos survive across requests (negative disables)")
		bodyCache    = flag.Int("bodycache-entries", 1024, "compiled-body cache entries: parsed/generated thread bodies reused across requests (negative disables)")
		rewCache     = flag.Int("rewritecache-entries", 1024, "rewrite-result cache entries: rewritten bodies keyed by (func, PR, SR, palette), shared frozen across requests (negative disables)")
		rawCache     = flag.Int("rawcache-entries", 512, "raw-request cache entries: byte-identical request bodies skip JSON decoding and hashing (negative disables)")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "cap on the per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		tenantQueue   = flag.Int("tenant-queue", 0, "per-tenant admission bound (0 = the whole queue; set near queue/N to isolate N rivals)")
		tenantWeights = flag.String("tenant-weights", "", "DRR tenant weights as tenant=weight,... (absent tenants weigh 1)")
		shedLow       = flag.Float64("shed-low", 0.5, "backlog fraction past which low-priority requests are shed (negative disables)")
		shedNormal    = flag.Float64("shed-normal", 0.85, "backlog fraction past which normal-priority requests are shed (negative disables)")
	)
	flag.Parse()
	weights, err := serve.ParseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npserve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	cfg := serve.Config{
		NReg:           *nreg,
		Workers:        *jobs,
		MaxQueue:       *queue,
		MaxBatch:       *batch,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,

		FuncCacheEntries:    *funcCache,
		BodyCacheEntries:    *bodyCache,
		RewriteCacheEntries: *rewCache,
		RawCacheEntries:     *rawCache,

		MaxTenantQueue: *tenantQueue,
		TenantWeights:  weights,
		ShedLowFrac:    *shedLow,
		ShedNormalFrac: *shedNormal,
	}
	if err := run(ctx, *addr, cfg, *drainTimeout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "npserve:", err)
		os.Exit(1)
	}
}

// run starts the service on addr and blocks until ctx is cancelled and
// the drain completes. If ready is non-nil, the bound listener address
// is sent on it once the server is accepting (for tests).
func run(ctx context.Context, addr string, cfg serve.Config, drainTimeout time.Duration, ready chan<- string) error {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "npserve: listening on %s (workers %d, queue %d, batch %d, cache %d, funccache %d, bodycache %d, rewritecache %d, rawcache %d)\n",
		ln.Addr(), cfg.Workers, cfg.MaxQueue, cfg.MaxBatch, cfg.CacheEntries, cfg.FuncCacheEntries, cfg.BodyCacheEntries, cfg.RewriteCacheEntries, cfg.RawCacheEntries)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "npserve: draining (in-flight requests will finish)")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "npserve: drained cleanly")
	return nil
}
