package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the first layer of the anz flow framework: a
// per-function control-flow graph over go/ast. The paper's method is
// static reasoning about shared resources across *all* interleavings,
// not observed ones; the syntactic walks of the earlier analyzers
// cannot see "lock held on this path but not that one", so the
// concurrency-safety passes (lockorder, goleak, atomicmix) run on this
// CFG plus the worklist solver in dataflow.go instead.
//
// Shape: blocks hold statements and condition expressions in evaluation
// order; edges carry control. The builder understands if/else with
// short-circuit && and || decomposed into branch edges, for/range loops
// (including labeled break/continue), switch/type-switch with and
// without default, select (a case per communication, plus default),
// goto, and return/panic exits. defer is NOT an edge: deferred calls
// are collected per function in CFG.Defers, because they run at every
// exit in LIFO order — flow analyses apply them when a path reaches
// Exit, not at the defer statement.

// A CFG is the control-flow graph of one function body. Entry is the
// first executable block; Exit is the single synthetic exit every
// return and fall-off-the-end edge targets. Blocks is in construction
// order, which is stable for a given source text.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// Defers lists the deferred call expressions of the function in
	// source order. They execute at every exit, last-in first-out.
	Defers []*ast.CallExpr
}

// A Block is a straight-line run of AST nodes with no internal control
// transfer. Nodes holds statements and — for decomposed conditions —
// bare expressions, in evaluation order. Succs are the possible
// continuations; a block ending the function has Exit as its only
// successor. Kind is a human-readable tag used by the golden
// successor-set tests and in debug dumps.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block

	// unreachable marks blocks created after a terminating statement
	// (return, panic, break) that no edge ever targeted.
	unreachable bool
}

// Reachable reports whether any path from Entry reaches b.
func (g *CFG) Reachable(b *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(x *Block)
	walk = func(x *Block) {
		if seen[x.Index] {
			return
		}
		seen[x.Index] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen[b.Index]
}

// ExitReachable reports whether the synthetic exit is reachable from
// Entry — i.e. whether the function can terminate at all. A goroutine
// body for which this is false spins or blocks forever (the goleak bug
// class), absent panics.
func (g *CFG) ExitReachable() bool { return g.Reachable(g.Exit) }

// Dump renders the graph as one line per reachable block:
//
//	b0 entry [stmts...] -> b1 b2
//
// It is the golden format of the CFG corner tests. Node text is
// abbreviated to the first lexical token-ish fragment so goldens stay
// readable.
func (g *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		if b.unreachable && !g.Reachable(b) {
			continue
		}
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " {%s}", nodeLabel(n))
		}
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		sb.WriteString(" ->")
		if len(succs) == 0 {
			sb.WriteString(" .")
		}
		for _, s := range succs {
			fmt.Fprintf(&sb, " b%d", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeLabel abbreviates an AST node for Dump.
func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return exprText(n.Lhs[0]) + " " + n.Tok.String()
	case *ast.ExprStmt:
		return exprText(n.X)
	case *ast.ReturnStmt:
		return "return"
	case *ast.IncDecStmt:
		return exprText(n.X) + n.Tok.String()
	case *ast.SendStmt:
		return exprText(n.Chan) + "<-"
	case *ast.DeferStmt:
		return "defer " + exprText(n.Call.Fun)
	case *ast.GoStmt:
		return "go " + exprText(n.Call.Fun)
	case ast.Expr:
		return exprText(n)
	case *ast.DeclStmt:
		return "var"
	case *ast.EmptyStmt:
		return ";"
	default:
		return fmt.Sprintf("%T", n)
	}
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.BinaryExpr:
		return exprText(e.X) + e.Op.String() + exprText(e.Y)
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.IndexExpr:
		return exprText(e.X) + "[]"
	case *ast.BasicLit:
		return e.Value
	case *ast.FuncLit:
		return "func(){}"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.TypeAssertExpr:
		return exprText(e.X) + ".(T)"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// BuildCFG constructs the CFG of a function body. It never fails:
// constructs it cannot model precisely (goto to a label it has not seen
// when the jump is forward) degrade to conservative edges rather than
// errors, so analyses stay sound-for-their-purpose on every function in
// the tree.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.labels = make(map[string]*labelTargets)
	b.gotos = make(map[string]*Block)
	b.pendingGotos = make(map[string][]*Block)
	b.stmtList(body.List)
	b.jump(b.g.Exit) // fall off the end
	// Forward gotos to labels that never materialized (malformed source
	// survives parsing): send them to Exit so reachability stays sane.
	dangling := make([]string, 0, len(b.pendingGotos))
	for label := range b.pendingGotos {
		dangling = append(dangling, label)
	}
	sort.Strings(dangling)
	for _, label := range dangling {
		for _, s := range b.pendingGotos[label] {
			b.edge(s, b.g.Exit)
		}
	}
	return b.g
}

// labelTargets holds the break/continue destinations of one labeled
// loop or switch/select.
type labelTargets struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	g   *CFG
	cur *Block

	// The innermost enclosing break/continue targets; label "" is the
	// unlabeled innermost construct. Stacked by loops/switches.
	breakStack    []*labelTargets
	labels        map[string]*labelTargets
	gotos         map[string]*Block   // label -> its block, once seen
	pendingGotos  map[string][]*Block // forward gotos awaiting a label
	pendingLabels []string            // labels attached to the next loop/switch
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and leaves the
// builder on a fresh unreachable block (statements after a terminator
// parse but never run).
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock("dead")
	b.cur.unreachable = true
}

// startBlock begins kind at an already-created block and makes it
// current.
func (b *cfgBuilder) seal(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		thenB := b.newBlock("then")
		var elseB *Block
		afterB := b.newBlock("if.after")
		if s.Else != nil {
			elseB = b.newBlock("else")
		} else {
			elseB = afterB
		}
		b.cond(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.seal(afterB)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.seal(afterB)
		}
		b.cur = afterB

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		post := body
		after := b.newBlock("for.after")
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.seal(head)
		if s.Cond != nil {
			b.cur = head
			b.cond(s.Cond, body, after)
		} else {
			b.edge(head, body)
		}
		b.pushLoop(after, headOrPost(head, s.Post, post))
		b.cur = body
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.seal(post)
			b.stmt(s.Post)
			b.seal(head)
		} else {
			b.seal(head)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		// The range head both tests for exhaustion and binds the next
		// element; exhaustion (or channel close) exits to after.
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.add(s.X)
		b.seal(head)
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.seal(head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, false)

	case *ast.SelectStmt:
		b.switchBody(s.Body, true)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabels = append(b.pendingLabels, s.Label.Name)
			b.stmt(s.Stmt)
			delete(b.labels, s.Label.Name)
		default:
			// A plain labeled statement is a goto target.
			target := b.newBlock("label." + s.Label.Name)
			b.seal(target)
			b.gotos[s.Label.Name] = target
			for _, src := range b.pendingGotos[s.Label.Name] {
				b.edge(src, target)
			}
			delete(b.pendingGotos, s.Label.Name)
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(label); t != nil && t.breakTo != nil {
				b.add(s)
				b.jump(t.breakTo)
			}
		case token.CONTINUE:
			if t := b.continueTarget(label); t != nil {
				b.add(s)
				b.jump(t.continueTo)
			}
		case token.GOTO:
			b.add(s)
			if target, ok := b.gotos[label]; ok {
				b.jump(target)
			} else {
				// Forward goto: resolve when the label appears.
				src := b.cur
				b.pendingGotos[label] = append(b.pendingGotos[label], src)
				b.cur = b.newBlock("dead")
				b.cur.unreachable = true
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchBody.
			b.add(s)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicOrExit(s.X) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Go, Send, IncDec, Decl — straight-line.
		b.add(s)
	}
}

// headOrPost picks the continue target of a for loop: the post block
// when one exists, else the head.
func headOrPost(head *Block, post ast.Stmt, postB *Block) *Block {
	if post != nil {
		return postB
	}
	return head
}

// switchBody lowers a switch/type-switch/select body: each clause gets
// its own block branching from the current one; break targets the
// shared after block. fallthrough chains a case block to the next
// clause's block. Select clauses additionally record their comm
// statement as the block's first node.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, isSelect bool) {
	afterKind := "switch.after"
	if isSelect {
		afterKind = "select.after"
	}
	after := b.newBlock(afterKind)
	b.pushSwitch(after)
	entry := b.cur
	b.cur = b.newBlock("dead")
	b.cur.unreachable = true

	var clauseBlocks []*Block
	var clauses []ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		kind := "case"
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
				kind = "default"
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
				kind = "default"
			}
		}
		if isSelect {
			kind = "select." + kind
		}
		blk := b.newBlock(kind)
		b.edge(entry, blk)
		clauseBlocks = append(clauseBlocks, blk)
		clauses = append(clauses, c)
	}
	if !hasDefault && !isSelect {
		// No default: the switch can fall through to after directly. A
		// select without default always blocks until a comm fires, so it
		// gets no such edge.
		b.edge(entry, after)
	}

	for i, c := range clauses {
		save := b.cur
		b.cur = clauseBlocks[i]
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.add(e)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			stmts = cc.Body
		}
		fallsThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.seal(clauseBlocks[i+1])
		} else {
			b.seal(after)
		}
		b.cur = save
	}
	b.popLoop()
	b.cur = after
}

// cond lowers a condition expression with short-circuit decomposition:
// the current block evaluates the first operand and branches; derived
// blocks evaluate the rest. && and || inside ! and parens are handled
// by recursion.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, t, f)
		return
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			rhs := b.newBlock("cond.rhs")
			b.cond(e.X, rhs, f)
			b.cur = rhs
			b.cond(e.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.rhs")
			b.cond(e.X, t, rhs)
			b.cur = rhs
			b.cond(e.Y, t, f)
			return
		}
	}
	b.add(e)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
	b.cur = b.newBlock("dead")
	b.cur.unreachable = true
}

func (b *cfgBuilder) pushLoop(breakTo, continueTo *Block) {
	lt := &labelTargets{breakTo: breakTo, continueTo: continueTo}
	b.breakStack = append(b.breakStack, lt)
	for _, l := range b.pendingLabels {
		b.labels[l] = lt
	}
	b.pendingLabels = nil
}

func (b *cfgBuilder) pushSwitch(breakTo *Block) {
	lt := &labelTargets{breakTo: breakTo}
	b.breakStack = append(b.breakStack, lt)
	for _, l := range b.pendingLabels {
		b.labels[l] = lt
	}
	b.pendingLabels = nil
}

func (b *cfgBuilder) popLoop() { b.breakStack = b.breakStack[:len(b.breakStack)-1] }

// branchTarget resolves a break label: the named frame, or the
// innermost loop/switch/select.
func (b *cfgBuilder) branchTarget(label string) *labelTargets {
	if label != "" {
		return b.labels[label]
	}
	if len(b.breakStack) == 0 {
		return nil
	}
	return b.breakStack[len(b.breakStack)-1]
}

// continueTarget resolves a continue label: unlabeled continue targets
// the innermost *for*, skipping switch/select frames, which have no
// continue destination.
func (b *cfgBuilder) continueTarget(label string) *labelTargets {
	if label != "" {
		if t := b.labels[label]; t != nil && t.continueTo != nil {
			return t
		}
		return nil
	}
	for i := len(b.breakStack) - 1; i >= 0; i-- {
		if b.breakStack[i].continueTo != nil {
			return b.breakStack[i]
		}
	}
	return nil
}

// isPanicOrExit recognizes calls that never return: the builtin panic,
// os.Exit, log.Fatal*, and runtime.Goexit.
func isPanicOrExit(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
