package experiments

import (
	"context"
	"fmt"
	"strings"

	"npra/internal/bench"
	"npra/internal/intra"
	"npra/internal/ir"
	"npra/internal/parallel"
)

// Table3Thread is one thread row of a Table 3 scenario: the per-thread
// allocation decision plus baseline-vs-sharing context switches and
// cycles per iteration.
type Table3Thread struct {
	Bench      string
	Critical   bool
	PR, SR     int
	LiveRanges int
	Moves      int

	CTXSpill   int // static context-switch instructions, baseline (spill code included)
	CTXSharing int

	CyclesSpill   float64 // simulated cycles per iteration
	CyclesSharing float64
	SpeedupPct    float64 // positive = sharing is faster
}

// Table3Scenario is one of the paper's three ARA workload mixes.
type Table3Scenario struct {
	Name        string
	Description string
	Benchmarks  []string // one per thread
	Critical    []bool
	Threads     []Table3Thread
	SGR         int
	TotalRegs   int

	// SolveCache is the sharing allocator's Solve-point cache activity
	// for this scenario (duplicate-thread dedup plus greedy re-probes).
	SolveCache intra.CacheStats
}

// scenarios are the paper's three Table 3 workloads.
var scenarios = []struct {
	name, desc string
	benches    []string
	critical   []bool
}{
	{
		name: "S1", desc: "processing module: md5 x2 + fir2dim x2 (critical: md5)",
		benches:  []string{"md5", "md5", "fir2dim", "fir2dim"},
		critical: []bool{true, true, false, false},
	},
	{
		name: "S2", desc: "full port pair: l2l3fwd recv/send + md5 x2 (critical: md5)",
		benches:  []string{"l2l3fwd_recv", "l2l3fwd_send", "md5", "md5"},
		critical: []bool{false, false, true, true},
	},
	{
		name: "S3", desc: "scheduler: wraps recv/send + fir2dim + frag (critical: wraps)",
		benches:  []string{"wraps_recv", "wraps_send", "fir2dim", "frag"},
		critical: []bool{true, true, false, false},
	},
}

// Table3 runs the three ARA scenarios — baseline per-thread Chaitin with
// spilling versus the cross-thread balancing allocator, both simulated —
// one scenario per worker task.
func Table3(npkts int) ([]Table3Scenario, error) {
	rows, err := parallel.MapErr(context.Background(), workers, len(scenarios), func(i int) (*Table3Scenario, error) {
		sc := scenarios[i]
		return runScenario(sc.name, sc.desc, sc.benches, sc.critical, npkts)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Table3Scenario, len(rows))
	for i, r := range rows {
		out[i] = *r
	}
	return out, nil
}

func runScenario(name, desc string, benches []string, critical []bool, npkts int) (*Table3Scenario, error) {
	funcs := make([]*ir.Func, len(benches))
	for i, bn := range benches {
		b, err := bench.Get(bn)
		if err != nil {
			return nil, err
		}
		funcs[i] = b.Gen(npkts)
	}

	// Baseline: fixed partitions, spill as needed.
	baseThreads, baseAllocs, err := baselineThreads(funcs)
	if err != nil {
		return nil, fmt.Errorf("%s: baseline: %w", name, err)
	}
	baseRes, err := runSim(baseThreads)
	if err != nil {
		return nil, fmt.Errorf("%s: baseline sim: %w", name, err)
	}

	// Sharing: the paper's allocator. Fresh clones (allocation mutates
	// nothing, but keep inputs clearly separate).
	shareFuncs := make([]*ir.Func, len(benches))
	for i, bn := range benches {
		b, _ := bench.Get(bn)
		shareFuncs[i] = b.Gen(npkts)
	}
	shareThreads, alloc, err := sharingThreads(shareFuncs)
	if err != nil {
		return nil, fmt.Errorf("%s: sharing: %w", name, err)
	}
	shareRes, err := runSim(shareThreads)
	if err != nil {
		return nil, fmt.Errorf("%s: sharing sim: %w", name, err)
	}

	scn := &Table3Scenario{
		Name: name, Description: desc,
		Benchmarks: benches, Critical: critical,
		SGR: alloc.SGR, TotalRegs: alloc.TotalRegisters(),
		SolveCache: alloc.SolveCache,
	}
	for i := range benches {
		spillCyc := baseRes.Threads[i].CyclesPerIter()
		shareCyc := shareRes.Threads[i].CyclesPerIter()
		speed := 0.0
		if spillCyc > 0 {
			speed = 100 * (spillCyc - shareCyc) / spillCyc
		}
		scn.Threads = append(scn.Threads, Table3Thread{
			Bench:         benches[i],
			Critical:      critical[i],
			PR:            alloc.Threads[i].PR,
			SR:            alloc.Threads[i].SR,
			LiveRanges:    alloc.Threads[i].LiveRanges,
			Moves:         alloc.Threads[i].Stats.Added(),
			CTXSpill:      baseAllocs[i].F.Stats().CSBs,
			CTXSharing:    alloc.Threads[i].F.Stats().CSBs,
			CyclesSpill:   spillCyc,
			CyclesSharing: shareCyc,
			SpeedupPct:    speed,
		})
	}
	return scn, nil
}

// FormatTable3 renders the scenarios like the paper's Table 3.
func FormatTable3(scs []Table3Scenario) string {
	var sb strings.Builder
	sb.WriteString("Table 3: ARA scenarios — baseline 32-reg/thread spilling vs. cross-thread sharing\n")
	for _, sc := range scs {
		fmt.Fprintf(&sb, "\n%s: %s  (SGR=%d, total regs=%d/%d)\n", sc.Name, sc.Description, sc.SGR, sc.TotalRegs, NReg)
		fmt.Fprintf(&sb, "  %-14s %4s %4s %6s %6s %9s %9s %10s %10s %8s\n",
			"thread", "PR", "SR", "#live", "moves", "CTX:spill", "CTX:share", "cyc:spill", "cyc:share", "speedup")
		for _, t := range sc.Threads {
			crit := " "
			if t.Critical {
				crit = "*"
			}
			fmt.Fprintf(&sb, "%s %-14s %4d %4d %6d %6d %9d %9d %10.1f %10.1f %7.1f%%\n",
				crit, t.Bench, t.PR, t.SR, t.LiveRanges, t.Moves,
				t.CTXSpill, t.CTXSharing, t.CyclesSpill, t.CyclesSharing, t.SpeedupPct)
		}
	}
	sb.WriteString("\n(* = performance-critical thread; paper: critical +18..24%, others -1..-4%)\n")
	return sb.String()
}
