package ir

import (
	"fmt"
	"sort"
)

// Block is a labeled straight-line run of instructions. Control enters at
// the first instruction; it leaves through branches anywhere inside (the
// IR permits branches only as the last instruction of a block) or by
// falling through to the next block in Func.Blocks order.
type Block struct {
	Label  string
	Instrs []Instr

	// Computed by Func.Build.
	Index int   // position in Func.Blocks
	Succs []int // successor block indices
	Preds []int // predecessor block indices
	start int   // global point index of first instruction
}

// Func is a single compiled function: the unit of allocation. One thread
// runs one Func. NumRegs is the number of (virtual or physical) registers
// referenced; Physical records whether registers index the hardware file.
type Func struct {
	Name     string
	Blocks   []*Block
	NumRegs  int
	Physical bool

	built   bool
	frozen  bool
	nPoints int
	byLabel map[string]int
	pointBk []int32 // point -> block index
}

// Freeze marks the function immutable: Build returns an error and
// RenumberRegs panics. Caches that hand one *Func to many concurrent
// readers freeze it first so an accidental structural mutation fails
// loudly instead of corrupting every holder.
func (f *Func) Freeze() { f.frozen = true }

// Frozen reports whether Freeze has been called.
func (f *Func) Frozen() bool { return f.frozen }

// NumPoints returns the number of instructions (global program points).
// Valid after Build.
func (f *Func) NumPoints() int { return f.nPoints }

// Built reports whether Build has completed successfully.
func (f *Func) Built() bool { return f.built }

// BlockByLabel returns the index of the block with the given label, or -1.
func (f *Func) BlockByLabel(label string) int {
	if i, ok := f.byLabel[label]; ok {
		return i
	}
	return -1
}

// splitAtBranches normalizes the function so branches appear only as the
// last instruction of a block, splitting blocks after interior branches
// and inventing fall-through labels. This lets assembly sources (and the
// Builder) write several conditional branches inside one labeled region.
func (f *Func) splitAtBranches() {
	// Fast path: most functions (notably rewriter output, which already
	// ends every block at a branch) need no splitting. Skip the wholesale
	// re-copy so arena-backed blocks survive Build intact.
	needSplit := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.IsBranch() || in.Op == OpHalt) && i != len(b.Instrs)-1 {
				needSplit = true
				break
			}
		}
		if needSplit {
			break
		}
	}
	if !needSplit {
		return
	}
	var out []*Block
	synth := 0
	for _, b := range f.Blocks {
		cur := &Block{Label: b.Label}
		out = append(out, cur)
		for i := range b.Instrs {
			in := b.Instrs[i]
			cur.Instrs = append(cur.Instrs, in)
			atEnd := i == len(b.Instrs)-1
			if (in.IsBranch() || in.Op == OpHalt) && !atEnd {
				synth++
				cur = &Block{Label: fmt.Sprintf(".%s.%d", b.Label, synth)}
				out = append(out, cur)
			}
		}
	}
	f.Blocks = out
}

// Build resolves labels, computes block successors/predecessors and global
// instruction numbering, and validates the function. It must be called
// after any structural mutation and before analyses run.
func (f *Func) Build() error {
	if f.frozen {
		return fmt.Errorf("ir: %s: Build on frozen func", f.Name)
	}
	f.built = false
	f.splitAtBranches()
	f.byLabel = make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		if b.Label == "" {
			return fmt.Errorf("ir: %s: block %d has empty label", f.Name, i)
		}
		if _, dup := f.byLabel[b.Label]; dup {
			return fmt.Errorf("ir: %s: duplicate label %q", f.Name, b.Label)
		}
		f.byLabel[b.Label] = i
		b.Index = i
		b.Succs = b.Succs[:0]
		b.Preds = b.Preds[:0]
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}

	// Number points and collect successors.
	n := 0
	for _, b := range f.Blocks {
		b.start = n
		n += len(b.Instrs)
	}
	f.nPoints = n
	f.pointBk = make([]int32, n)
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: block %q is empty", f.Name, b.Label)
		}
		for k := range b.Instrs {
			f.pointBk[b.start+k] = int32(bi)
			in := &b.Instrs[k]
			if err := f.checkInstr(b, k, in); err != nil {
				return err
			}
			if in.IsBranch() || in.Op == OpHalt {
				if k != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s: %q instruction %d: %s not at block end", f.Name, b.Label, k, in.Op)
				}
			}
		}
		last := &b.Instrs[len(b.Instrs)-1]
		if last.IsBranch() {
			ti, ok := f.byLabel[last.Target]
			if !ok {
				return fmt.Errorf("ir: %s: %q: unknown branch target %q", f.Name, b.Label, last.Target)
			}
			b.Succs = append(b.Succs, ti)
		}
		if !last.IsUncond() {
			if bi+1 >= len(f.Blocks) {
				return fmt.Errorf("ir: %s: %q falls off the end of the function", f.Name, b.Label)
			}
			b.Succs = appendUnique(b.Succs, bi+1)
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.Index)
		}
	}
	f.built = true
	return nil
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

func (f *Func) checkInstr(b *Block, k int, in *Instr) error {
	if in.Op == OpInvalid || in.Op >= opMax {
		return fmt.Errorf("ir: %s: %q instruction %d: invalid opcode", f.Name, b.Label, k)
	}
	sh := opShapes[in.Op]
	chk := func(want bool, r Reg, what string) error {
		if want && r == NoReg {
			return fmt.Errorf("ir: %s: %q instruction %d (%s): missing %s operand", f.Name, b.Label, k, in.Op, what)
		}
		if !want && r != NoReg {
			return fmt.Errorf("ir: %s: %q instruction %d (%s): unexpected %s operand", f.Name, b.Label, k, in.Op, what)
		}
		if r != NoReg && (int(r) < 0 || int(r) >= f.NumRegs) {
			return fmt.Errorf("ir: %s: %q instruction %d (%s): register %d out of range [0,%d)", f.Name, b.Label, k, in.Op, r, f.NumRegs)
		}
		return nil
	}
	if err := chk(sh.d, in.Def, "def"); err != nil {
		return err
	}
	if err := chk(sh.a, in.A, "A"); err != nil {
		return err
	}
	if err := chk(sh.b, in.B, "B"); err != nil {
		return err
	}
	if sh.t && in.Target == "" {
		return fmt.Errorf("ir: %s: %q instruction %d (%s): missing branch target", f.Name, b.Label, k, in.Op)
	}
	return nil
}

// Instr returns the instruction at global point p.
func (f *Func) Instr(p int) *Instr {
	b := f.Blocks[f.pointBk[p]]
	return &b.Instrs[p-b.start]
}

// PointBlock returns the block containing global point p.
func (f *Func) PointBlock(p int) *Block { return f.Blocks[f.pointBk[p]] }

// BlockStart returns the global point index of the block's first instruction.
func (b *Block) Start() int { return b.start }

// End returns the global point index one past the block's last instruction.
func (b *Block) End() int { return b.start + len(b.Instrs) }

// PointSuccs appends the global points control may reach after executing
// point p. Fallthrough within a block is p+1; at a block end the successors
// are the entry points of the successor blocks.
func (f *Func) PointSuccs(p int, buf []int) []int {
	b := f.PointBlock(p)
	k := p - b.start
	in := &b.Instrs[k]
	if k+1 < len(b.Instrs) {
		if !in.IsUncond() {
			buf = append(buf, p+1)
		}
		if in.IsBranch() { // only possible at block end; defensive
			buf = append(buf, f.Blocks[f.byLabel[in.Target]].start)
		}
		return buf
	}
	for _, s := range b.Succs {
		buf = append(buf, f.Blocks[s].start)
	}
	return buf
}

// Clone returns a deep copy of the function. The copy is unbuilt if the
// original was, built otherwise.
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, NumRegs: f.NumRegs, Physical: f.Physical}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{Label: b.Label, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		nf.Blocks[i] = nb
	}
	if f.built {
		if err := nf.Build(); err != nil {
			panic("ir: Clone of built func failed to rebuild: " + err.Error()) //lint:invariant Clone copies a func that already Built successfully; re-Build can only fail if the IR was mutated mid-clone
		}
	}
	return nf
}

// CloneRemapRegs returns a deep copy of the function with every register
// operand r replaced by remap[r] and NumRegs set to numRegs. Unlike
// Clone, a built original yields a built copy without re-running Build:
// remapping registers changes no label, block boundary or branch target,
// so the CFG metadata is carried over (Succs/Preds are copied — Build
// truncates them in place — while byLabel and pointBk, which Build
// replaces wholesale, are shared). remap must be injective over the
// registers the function uses, with every remap[r] in [0, numRegs).
//
// The funccache rewrite tier uses this to relocate one cached
// canonical-palette body onto many concrete register palettes.
func (f *Func) CloneRemapRegs(remap []Reg, numRegs int) *Func {
	nf := &Func{
		Name:     f.Name,
		NumRegs:  numRegs,
		Physical: f.Physical,
		built:    f.built,
		nPoints:  f.nPoints,
		byLabel:  f.byLabel,
		pointBk:  f.pointBk,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{
			Label:  b.Label,
			Instrs: make([]Instr, len(b.Instrs)),
			Index:  b.Index,
			start:  b.start,
		}
		if b.Succs != nil {
			nb.Succs = append([]int(nil), b.Succs...)
		}
		if b.Preds != nil {
			nb.Preds = append([]int(nil), b.Preds...)
		}
		for k := range b.Instrs {
			in := b.Instrs[k]
			if in.Def != NoReg {
				in.Def = remap[in.Def]
			}
			if in.A != NoReg {
				in.A = remap[in.A]
			}
			if in.B != NoReg {
				in.B = remap[in.B]
			}
			nb.Instrs[k] = in
		}
		nf.Blocks[i] = nb
	}
	return nf
}

// Stats summarizes static properties of a function.
type Stats struct {
	Instructions int
	CSBs         int // context-switch instructions (ctx/load/store)
	Branches     int
	Blocks       int
}

// Stats computes static instruction statistics.
func (f *Func) Stats() Stats {
	var s Stats
	s.Blocks = len(f.Blocks)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			s.Instructions++
			if in.IsCSB() {
				s.CSBs++
			}
			if in.IsBranch() {
				s.Branches++
			}
		}
	}
	return s
}

// RegsUsed returns the sorted set of registers referenced by the function.
func (f *Func) RegsUsed() []Reg {
	seen := make(map[Reg]bool)
	var buf []Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Def != NoReg {
				seen[in.Def] = true
			}
			buf = in.Uses(buf[:0])
			for _, r := range buf {
				seen[r] = true
			}
		}
	}
	out := make([]Reg, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenumberRegs compacts register numbering to the dense range [0, n) and
// returns n. The function must be rebuilt by the caller if it was built.
func (f *Func) RenumberRegs() int {
	if f.frozen {
		panic("ir: RenumberRegs on frozen func " + f.Name) //lint:invariant frozen funcs are cache-shared read-only bodies; renumbering one in place would corrupt every concurrent holder
	}
	used := f.RegsUsed()
	remap := make(map[Reg]Reg, len(used))
	for i, r := range used {
		remap[r] = Reg(i)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Def != NoReg {
				in.Def = remap[in.Def]
			}
			if in.A != NoReg {
				in.A = remap[in.A]
			}
			if in.B != NoReg {
				in.B = remap[in.B]
			}
		}
	}
	f.NumRegs = len(used)
	return len(used)
}
