// Package estimate computes the per-thread register requirement bounds of
// the paper's §5:
//
//	MinPR = RegPCSBmax  — max #values live across one context switch;
//	                      reachable by splitting at every CSB (Lemma 1).
//	MinR  = RegPmax     — max #co-live values at any point.
//	MaxPR, MaxR         — registers needed with no move insertion at all,
//	                      found by coloring the BIG and the IIGs
//	                      independently and merging with conflict-edge
//	                      repair (Figure 7), minimizing MaxPR first.
//
// The estimation coloring is also the starting context for the
// intra-thread allocator: reducing from (MaxPR, MaxR) costs zero moves.
package estimate

import (
	"errors"
	"fmt"
	"time"

	"npra/internal/bitset"
	"npra/internal/ig"
)

// ErrBoundsInverted reports that the move-free coloring produced bounds
// below the pressure lower bounds — an internal invariant violation
// (something upstream mis-analyzed the input), surfaced as a returned
// error rather than a panic so that library callers can degrade
// gracefully instead of crashing. Contrast with the programmer-error
// panics this codebase keeps (e.g. liveness.Compute on an unbuilt
// function): those fire on API misuse a caller can always avoid, while
// bound inversion depends on the *input program* and must therefore be
// reportable.
var ErrBoundsInverted = errors.New("estimate: bounds inverted")

// Bounds are the register-count bounds for one thread.
type Bounds struct {
	MinPR int // lower bound on private registers (RegPCSBmax)
	MinR  int // lower bound on total registers (RegPmax)
	MaxPR int // private registers for a move-free allocation
	MaxR  int // total registers for a move-free allocation
}

// MaxSR returns the shared-register demand of the move-free allocation.
func (b Bounds) MaxSR() int { return b.MaxR - b.MaxPR }

// Estimate is the result of bound estimation: the bounds plus the witness
// coloring (color per variable; -1 for dead variables). Boundary nodes use
// colors [0, MaxPR); all nodes use colors [0, MaxR).
type Estimate struct {
	Bounds
	Colors []int
}

// Stats reports where one bound estimation spent its time, split along
// the two phases of the paper's Figure 7: the independent BIG + IIG
// greedy colorings ("merge") and the conflict-edge repair that follows.
type Stats struct {
	MergeNS  int64 // BIG coloring + per-NSR IIG colorings
	RepairNS int64 // conflict-edge repair after the merge
}

// Compute runs the paper's Figure 7 algorithm: color the BIG minimally,
// color each IIG independently, merge, and repair conflict edges —
// preferring to keep MaxPR minimal because private registers contribute
// directly to the global register budget while shared registers only
// matter through the per-PU maximum.
func Compute(a *ig.Analysis) (*Estimate, error) {
	est, _, err := ComputeWithStats(a)
	return est, err
}

// ComputeWithStats is Compute plus per-phase wall-clock attribution.
func ComputeWithStats(a *ig.Analysis) (*Estimate, Stats, error) {
	var stats Stats
	nv := a.NumVars
	colors := make([]int, nv)
	for i := range colors {
		colors[i] = -1
	}

	start := time.Now() //lint:ignore detlint phase-timing observability only; duration never feeds an allocation decision
	// Step 1: color the BIG (boundary-interference edges only).
	bnodes := a.BoundaryNodes()
	bOrder := a.BIG.SmallestLastOrder(bnodes)
	colors, _ = a.BIG.GreedyColorMasked(bOrder, colors, bnodes)

	// Step 2: color each IIG independently (internal nodes per NSR,
	// ignoring boundary colors for now).
	for _, members := range a.IIGMembers() {
		if members.Empty() {
			continue
		}
		order := a.GIG.SmallestLastOrder(members)
		colors, _ = a.GIG.GreedyColorMasked(order, colors, members)
	}
	stats.MergeNS = time.Since(start).Nanoseconds()

	start = time.Now() //lint:ignore detlint phase-timing observability only; duration never feeds an allocation decision
	// Step 3: merge — repair every GIG edge whose endpoints collide.
	// Repairs pick colors free among *all* currently-colored GIG
	// neighbors, so they never create new conflicts and the loop
	// terminates.
	repairConflicts(a, colors)
	stats.RepairNS = time.Since(start).Nanoseconds()

	maxPR, maxR := normalize(a, colors)
	est := &Estimate{
		Bounds: Bounds{
			MinPR: a.Live.CSBPressureMax(),
			MinR:  a.Live.PressureMax(),
			MaxPR: maxPR,
			MaxR:  maxR,
		},
		Colors: colors,
	}
	if err := est.reconcile(); err != nil {
		return nil, stats, err
	}
	return est, stats, nil
}

// ComputeJoint is the ablation variant the paper contrasts with: color the
// whole GIG at once minimizing MaxR, letting MaxPR land where it may.
func ComputeJoint(a *ig.Analysis) (*Estimate, error) {
	nv := a.NumVars
	colors := make([]int, nv)
	for i := range colors {
		colors[i] = -1
	}
	live := bitset.New(nv)
	for v := 0; v < nv; v++ {
		if a.Alive[v] {
			live.Add(v)
		}
	}
	order := a.GIG.SmallestLastOrder(live)
	colors, _ = a.GIG.GreedyColor(order, colors)
	maxPR, maxR := normalize(a, colors)
	est := &Estimate{
		Bounds: Bounds{
			MinPR: a.Live.CSBPressureMax(),
			MinR:  a.Live.PressureMax(),
			MaxPR: maxPR,
			MaxR:  maxR,
		},
		Colors: colors,
	}
	if err := est.reconcile(); err != nil {
		return nil, err
	}
	return est, nil
}

// reconcile enforces the arithmetic relations between the bounds that
// hold by construction but can be perturbed by degenerate inputs (e.g. a
// function with no CSBs has MinPR = 0 yet MaxPR = 0 already). A bound
// inversion the arithmetic cannot repair is an internal invariant
// violation and comes back as an error wrapping ErrBoundsInverted.
func (e *Estimate) reconcile() error {
	if e.MaxR < e.MaxPR {
		e.MaxR = e.MaxPR
	}
	if e.MinR < e.MinPR {
		e.MinR = e.MinPR
	}
	if e.MaxPR < e.MinPR {
		// The move-free coloring can never beat the CSB pressure bound;
		// if greedy numbers say otherwise something is wrong upstream.
		return fmt.Errorf("%w: MaxPR %d < MinPR %d", ErrBoundsInverted, e.MaxPR, e.MinPR)
	}
	if e.MaxR < e.MinR {
		return fmt.Errorf("%w: MaxR %d < MinR %d", ErrBoundsInverted, e.MaxR, e.MinR)
	}
	return nil
}

// repairConflicts fixes same-color GIG edges after the independent BIG and
// IIG colorings are merged. Preference order per conflict edge (paper
// Fig. 7.b): recolor the boundary endpoint within the boundary palette,
// recolor the internal endpoint anywhere, try to displace one blocking
// neighbor, and as a last resort give the internal endpoint a fresh color
// (growing MaxR) or — for boundary/boundary conflicts — the boundary
// endpoint a fresh color (growing MaxPR).
//
// The loop resumes the conflict scan at the node where the last conflict
// was found instead of restarting at node 0: every repair except the
// boundary/boundary last resort picks a color free among *all* colored GIG
// neighbors (or a globally fresh color), so the already-verified prefix
// can never become dirty. Only the `colors[t] = bp` last resort may reuse
// a color held by an internal node elsewhere, forcing a full rescan.
func repairConflicts(a *ig.Analysis, colors []int) {
	st := newRepairState(a, colors)
	boundaryPalette := func() int {
		// Current number of colors in use by boundary nodes, as palette
		// ceiling for boundary recoloring.
		max := -1
		for v := 0; v < a.NumVars; v++ {
			if a.Boundary[v] && colors[v] > max {
				max = colors[v]
			}
		}
		return max + 1
	}
	from := 0
	for { //lint:invariant every iteration either repairs the conflict at hand or assigns a fresh color, and fresh colors strictly grow toward the finite palette bound
		u, v := a.GIG.VerifyColoringFrom(colors, from)
		if u < 0 {
			return
		}
		from = u // prefix [0,u) proven clean; safe repairs preserve it
		// Make u the preferred node to recolor: internal beats boundary.
		s, t := u, v // s boundary-ish, t internal-ish
		if a.Boundary[u] && !a.Boundary[v] {
			s, t = u, v
		} else if a.Boundary[v] && !a.Boundary[u] {
			s, t = v, u
		}
		switch {
		case a.Boundary[s] && !a.Boundary[t]:
			bp := boundaryPalette()
			if st.tryRecolor(s, bp) {
				continue
			}
			if st.tryRecolor(t, maxColor(colors)+1) {
				continue
			}
			if st.tryNeighborRecolor(t) {
				continue
			}
			colors[t] = maxColor(colors) + 1 // fresh color: MaxR grows
		case !a.Boundary[s] && !a.Boundary[t]:
			if st.tryRecolor(t, maxColor(colors)+1) {
				continue
			}
			if st.tryNeighborRecolor(t) {
				continue
			}
			colors[t] = maxColor(colors) + 1
		default: // both boundary
			bp := boundaryPalette()
			if st.tryRecolor(s, bp) {
				continue
			}
			if st.tryRecolor(t, bp) {
				continue
			}
			colors[t] = bp // fresh boundary color: MaxPR grows
			from = 0       // bp may collide with an internal node anywhere
		}
	}
}

func maxColor(colors []int) int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max
}

// repairState carries the scratch buffers one repairConflicts run reuses
// across every recolor probe: a color-usage bitmap and a per-color blocker
// table, both sized by the color-space bound (at most one color per node).
// The maps they replace were the dominant allocation source of the repair
// phase.
type repairState struct {
	a      *ig.Analysis
	colors []int
	used   []bool  // color -> used by a neighbor (cleared after each probe)
	cnt    []int32 // color -> number of blocking neighbors
	blk    []int32 // color -> one blocking neighbor (valid when cnt == 1)
}

func newRepairState(a *ig.Analysis, colors []int) *repairState {
	n := a.NumVars
	return &repairState{
		a:      a,
		colors: colors,
		used:   make([]bool, n+2),
		cnt:    make([]int32, n+2),
		blk:    make([]int32, n+2),
	}
}

// tryRecolor gives node n a color in [0, limit) unused by any colored GIG
// neighbor, reporting success.
func (st *repairState) tryRecolor(n, limit int) bool {
	c := st.freeColorFor(n, limit, -1)
	if c < 0 {
		return false
	}
	st.colors[n] = c
	return true
}

// freeColorFor returns the lowest color in [0, limit) that differs from
// w's current color and from exclude and is unused by any colored GIG
// neighbor of w, or -1. The st.used scratch is cleared before returning.
func (st *repairState) freeColorFor(w, limit, exclude int) int {
	used, colors := st.used, st.colors
	adj := st.a.GIG.Neighbors(w)
	for x := adj.NextSet(0); x >= 0; x = adj.NextSet(x + 1) {
		if c := colors[x]; c >= 0 {
			used[c] = true
		}
	}
	res := -1
	for c := 0; c < limit; c++ {
		if c != exclude && c != colors[w] && !used[c] {
			res = c
			break
		}
	}
	for x := adj.NextSet(0); x >= 0; x = adj.NextSet(x + 1) {
		if c := colors[x]; c >= 0 {
			used[c] = false
		}
	}
	return res
}

// tryNeighborRecolor attempts the paper's heuristic: find a color c' such
// that exactly one neighbor w of n blocks c', and w itself can move to a
// different color; then shift w and take c'.
func (st *repairState) tryNeighborRecolor(n int) bool {
	a, colors := st.a, st.colors
	limit := maxColor(colors) + 1
	cnt, blk := st.cnt, st.blk
	adj := a.GIG.Neighbors(n)
	for w := adj.NextSet(0); w >= 0; w = adj.NextSet(w + 1) {
		if c := colors[w]; c >= 0 {
			cnt[c]++
			blk[c] = int32(w)
		}
	}
	clear := func() {
		for w := adj.NextSet(0); w >= 0; w = adj.NextSet(w + 1) {
			if c := colors[w]; c >= 0 {
				cnt[c] = 0
			}
		}
	}
	for c := 0; c < limit; c++ {
		if c == colors[n] || cnt[c] != 1 {
			continue
		}
		w := int(blk[c])
		wLimit := limit
		if a.Boundary[w] {
			// Boundary neighbors may only move within the boundary
			// palette; approximate it with colors currently used by
			// boundary nodes.
			wLimit = 0
			for v := 0; v < a.NumVars; v++ {
				if a.Boundary[v] && colors[v]+1 > wLimit {
					wLimit = colors[v] + 1
				}
			}
		}
		if cw := st.freeColorFor(w, wLimit, c); cw >= 0 {
			clear() // keys off colors[w]: must run before the mutation
			colors[w] = cw
			colors[n] = c
			return true
		}
	}
	clear()
	return false
}

// normalize relabels colors so that the colors used by boundary nodes form
// the prefix [0, MaxPR) and all colors form [0, MaxR). This is the palette
// layout the allocators rely on: private registers first, shared after.
func normalize(a *ig.Analysis, colors []int) (maxPR, maxR int) {
	remap := make(map[int]int)
	next := 0
	// Boundary colors first, in order of appearance.
	for v := 0; v < a.NumVars; v++ {
		if !a.Boundary[v] || colors[v] < 0 {
			continue
		}
		if _, ok := remap[colors[v]]; !ok {
			remap[colors[v]] = next
			next++
		}
	}
	maxPR = next
	for v := 0; v < a.NumVars; v++ {
		if colors[v] < 0 || a.Boundary[v] {
			continue
		}
		if _, ok := remap[colors[v]]; !ok {
			remap[colors[v]] = next
			next++
		}
	}
	maxR = next
	for v := 0; v < a.NumVars; v++ {
		if colors[v] >= 0 {
			colors[v] = remap[colors[v]]
		}
	}
	return maxPR, maxR
}
