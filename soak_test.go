package npra_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"npra/internal/banks"
	"npra/internal/core"
	"npra/internal/interp"
	"npra/internal/intra"
	"npra/internal/ir"
	"npra/internal/passes"
	"npra/internal/progen"
	"npra/internal/serve"
	"npra/internal/sim"
	"npra/internal/tools/loadgen"
)

// soakGuard gates every soak test behind -short uniformly: one skip
// policy, one message, so `go test -short ./...` reliably drops all of
// them and nothing slips in with an ad-hoc (or missing) guard.
func soakGuard(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
}

// TestSoakFullPipeline drives the complete toolchain — optimizer,
// cross-thread allocator, bank legalization, simulator — over larger
// randomly generated (always-halting) workloads and checks every safety
// and equivalence property on each. Skipped with -short.
func TestSoakFullPipeline(t *testing.T) {
	soakGuard(t)
	big := progen.StructuredConfig{
		MaxDepth: 3, MaxBodyLen: 14, MaxTripCnt: 4, MaxVars: 16,
		CSBDensity: 0.25, StoreWindow: 128,
	}
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))

		// Four threads with disjoint memory windows.
		var funcs []*ir.Func
		for i := 0; i < 4; i++ {
			cfg := big
			cfg.StoreBase = int64(i * 256)
			f := progen.GenerateStructured(rng, cfg)

			opt, _, err := passes.Optimize(f)
			if err != nil {
				t.Fatalf("seed %d: optimize: %v", seed, err)
			}
			funcs = append(funcs, opt)
		}
		refs := make([]*ir.Func, len(funcs))
		for i, f := range funcs {
			refs[i] = f.Clone()
		}

		// Tight budget: just above the splitting lower bounds, so the
		// reduction loop and live-range splitting genuinely fire.
		sumMinPR, maxMinSR := 0, 0
		for _, f := range funcs {
			bd := intra.MustNew(f).Bounds()
			sumMinPR += bd.MinPR
			if sr := bd.MinR - bd.MinPR; sr > maxMinSR {
				maxMinSR = sr
			}
		}
		tight := sumMinPR + maxMinSR + 2
		tightAlloc, err := core.AllocateARA(funcs, core.Config{NReg: tight})
		if err != nil {
			t.Fatalf("seed %d: tight allocate (%d regs): %v", seed, tight, err)
		}
		if err := tightAlloc.Verify(); err != nil {
			t.Fatalf("seed %d: tight verify: %v", seed, err)
		}
		if tightAlloc.TotalRegisters() > tight {
			t.Fatalf("seed %d: tight allocation over budget", seed)
		}

		alloc, err := core.AllocateARA(funcs, core.Config{NReg: 128})
		if err != nil {
			t.Fatalf("seed %d: allocate: %v", seed, err)
		}
		if err := alloc.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}

		var allocated []*ir.Func
		var threads []*sim.Thread
		for _, th := range alloc.Threads {
			allocated = append(allocated, th.F)
			threads = append(threads, &sim.Thread{
				F: th.F, ProtectLo: th.PrivBase, ProtectHi: th.PrivBase + th.PR,
			})
		}

		// Bank legalization on top.
		banked, err := banks.Assign(allocated, banks.Config{BankSize: 64})
		if err != nil {
			t.Fatalf("seed %d: banks: %v", seed, err)
		}
		for i, bf := range banked.Funcs {
			if err := banks.Check(bf, 64); err != nil {
				t.Fatalf("seed %d thread %d: %v", seed, i, err)
			}
		}

		// Simulate the allocated threads together with protection armed.
		simRes, err := sim.Run(threads, sim.Config{NReg: 128, MemWords: 4096, MaxCycles: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}

		// Each thread's output region must match its single-thread
		// reference run (disjoint windows make this exact).
		for i, rf := range refs {
			mem := make([]uint32, 4096)
			r, err := interp.Run(rf, mem, interp.Options{TID: uint32(i), MaxSteps: 1 << 22})
			if err != nil || !r.Halted {
				t.Fatalf("seed %d thread %d: reference diverged", seed, i)
			}
			base := i * 256 / 4
			for w := 0; w < 128/4; w++ {
				if simRes.Mem[base+w] != mem[base+w] {
					t.Fatalf("seed %d thread %d: mem[%d] sim %#x != ref %#x",
						seed, i, (base+w)*4, simRes.Mem[base+w], mem[base+w])
				}
			}
			if !simRes.Threads[i].Halted {
				t.Fatalf("seed %d thread %d: did not halt in sim", seed, i)
			}
		}
	}
}

// TestSoakServe runs the allocation service under a sustained 30-second
// mixed load (half duplicates, varied shapes) and holds it to the
// serve-e2e gates: no transport errors, no 5xx, and a singleflight hit
// rate consistent with the duplicate ratio. Skipped with -short.
func TestSoakServe(t *testing.T) {
	soakGuard(t)
	s := serve.New(serve.Config{MaxQueue: 128})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		URL:         ts.URL,
		Concurrency: 8,
		Duration:    30 * time.Second,
		DupRatio:    0.5,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(0, 0.4, 0); err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 100 {
		t.Errorf("only %d requests in 30s; the service is unreasonably slow", rep.Requests)
	}
	t.Logf("soak: %d requests, %.1f rps, p50 %.2fms p99 %.2fms, dedup %.3f",
		rep.Requests, rep.ThroughputRPS, rep.P50MS, rep.P99MS, rep.SingleflightHitRate)
}

// TestSoakAdversarial holds the adversarial workload — cache-hostile
// shapes under heterogeneous hardware profiles — against a server with
// tiny cache tiers for 20 seconds. The gates are the serve-bench-adv
// set: zero cross-profile aliasing, every shape served, bounded
// relocation share and eviction thrash. Skipped with -short.
func TestSoakAdversarial(t *testing.T) {
	soakGuard(t)
	s := serve.New(serve.Config{
		MaxQueue:            128,
		FuncCacheEntries:    8,
		RewriteCacheEntries: 16,
		RawCacheEntries:     32,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	rep, err := loadgen.RunAdversarial(context.Background(), loadgen.AdvOptions{
		URL:               ts.URL,
		WorkersPerProfile: 2,
		Duration:          20 * time.Second,
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(0, 0.9, 8, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 100 {
		t.Errorf("only %d requests in 20s; the service is unreasonably slow", rep.Requests)
	}
	t.Logf("adversarial soak: %d requests, %.1f rps, reloc share %.3f, evict/req %.2f, fairness dev %.3f, p99 %.2fms",
		rep.Requests, rep.ThroughputRPS, rep.RelocShare, rep.EvictionsPerReq, rep.FairnessDev, rep.P99MS)
}
