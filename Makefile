GO ?= go

# The tier-1 gate: everything a PR must keep green.
.PHONY: check
check: vet build test race fuzz-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The packages with real concurrency: the worker pool and the allocator
# fan-outs (setup, pricing, SRA sweep) that write per-index slots.
.PHONY: race
race:
	$(GO) test -race ./internal/core/... ./internal/parallel/...

# A short native-fuzzer run over the allocation API with fault injection
# armed from the input; catches panics and verification/semantics breaks.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAllocateARA -fuzztime 10s ./internal/core/

.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAllocateARA|BenchmarkSolveCached' -benchtime 10x .
