package intra

import (
	"fmt"
	"math/bits"
	"sort"

	"npra/internal/bitset"
)

// errInfeasible reports that a color could not be vacated within the
// current palette (the budget is below the achievable lower bound).
type errInfeasible struct{ msg string }

func (e errInfeasible) Error() string { return "intra: infeasible: " + e.msg }

// IsInfeasible reports whether err marks an unreachable register budget.
func IsInfeasible(err error) bool {
	_, ok := err.(errInfeasible)
	return ok
}

// vacateColor removes color c from the palette entirely: every piece
// colored c is recolored — wholesale when possible, by live-range
// splitting otherwise — then colors above c shift down and the palette
// shrinks by one. This is the engine behind the paper's Reduce-SR
// invocation (and behind Reduce-PR when the whole register disappears).
func (ctx *Context) vacateColor(c int) error {
	victims := ctx.victimsOf(c, false)
	for _, i := range victims {
		if err := ctx.recolorPiece(i, c, false); err != nil {
			return err
		}
	}
	for _, x := range ctx.Pieces {
		if x.Color > c {
			x.Color--
		} else if x.Color == c {
			panic("intra: vacated color still in use") //lint:invariant occupancy index corruption: vacateColor is only called for colors Verify'd empty; a surviving user means occ and piece state diverged
		}
	}
	// occ: drop bit c from every row, shifting higher colors down in
	// step with the piece relabeling above.
	for p := 0; p < ctx.np; p++ {
		rowRemoveBit(ctx.occRow(p), c)
	}
	// byColor: splice out slot c (empty by now), reusing its storage for
	// the vacated top slot.
	empty := ctx.byColor[c][:0]
	copy(ctx.byColor[c:ctx.Size-1], ctx.byColor[c+1:ctx.Size])
	ctx.byColor[ctx.Size-1] = empty
	if c < ctx.Cap {
		ctx.Cap--
	}
	ctx.Size--
	// The downshift maps used colors injectively, so whether two pieces
	// share a color is unchanged: the cached cost stays valid.
	return nil
}

// rowRemoveBit deletes bit position c from the row, shifting all higher
// bits down by one (with carries across word boundaries).
func rowRemoveBit(row []uint64, c int) {
	wi := c >> 6
	low := uint64(1)<<(uint(c)&63) - 1 // bits below c within word wi
	for j := wi; j < len(row); j++ {
		w := row[j] >> 1
		if j+1 < len(row) {
			w |= row[j+1] << 63
		}
		if j == wi {
			w = w&^low | row[j]&low
		}
		row[j] = w
	}
}

// demoteColor makes private-capable color c shared-only without shrinking
// the palette: pieces that cross a CSB while holding c are moved off it
// (at least at their crossing points — splitting may leave internal
// fragments on c), then c swaps labels with color Cap-1 and the
// private-capable prefix shrinks by one. This is the paper's Reduce-PR
// when the register stays available as a shared one.
func (ctx *Context) demoteColor(c int) error {
	if c < 0 || c >= ctx.Cap {
		return fmt.Errorf("intra: demote color %d outside cap %d", c, ctx.Cap)
	}
	victims := ctx.victimsOf(c, true)
	for _, i := range victims {
		if err := ctx.recolorPiece(i, c, true); err != nil {
			return err
		}
	}
	// Swap labels c <-> Cap-1 so the private-capable colors stay a prefix.
	last := ctx.Cap - 1
	if c != last {
		for _, x := range ctx.Pieces {
			switch x.Color {
			case c:
				x.Color = last
			case last:
				x.Color = c
			}
		}
		wc, bc := c>>6, uint64(1)<<(uint(c)&63)
		wl, bl := last>>6, uint64(1)<<(uint(last)&63)
		for p := 0; p < ctx.np; p++ {
			row := ctx.occRow(p)
			if (row[wc]&bc != 0) != (row[wl]&bl != 0) {
				row[wc] ^= bc
				row[wl] ^= bl
			}
		}
		ctx.byColor[c], ctx.byColor[last] = ctx.byColor[last], ctx.byColor[c]
	}
	ctx.Cap--
	// A label swap is a color bijection: the cached cost stays valid.
	return nil
}

// victimsOf lists the pieces holding color c (restricted to CSB-crossing
// pieces when crossingOnly), smallest first — small pieces are most
// likely to slot into an existing color without splitting. Candidates are
// drawn from byColor but ordered by ascending piece index before the
// size sort, so the result does not depend on byColor's maintenance
// order. The returned slice is ctx scratch, valid until the next call.
func (ctx *Context) victimsOf(c int, crossingOnly bool) []int {
	victims := ctx.victScratch[:0]
	for _, idx := range ctx.byColor[c] {
		if crossingOnly && !ctx.crosses(ctx.Pieces[idx]) {
			continue
		}
		victims = append(victims, int(idx))
	}
	sort.Ints(victims)
	sort.SliceStable(victims, func(i, j int) bool {
		return ctx.Pieces[victims[i]].Points.Count() < ctx.Pieces[victims[j]].Points.Count()
	})
	ctx.victScratch = victims
	return victims
}

// recolorPiece moves piece i off color c. In vacate mode (crossingOnly
// false) c is banned at every point; in demote mode (crossingOnly true)
// c is banned only at the piece's CSB-crossing points, so splitting can
// keep internal fragments on c. It first tries a wholesale recolor (zero
// extra moves); failing that it splits the piece point-by-point, greedily
// extending single-color runs to keep the number of color changes — i.e.
// inserted moves — small. Points live across a CSB are restricted to the
// private-capable prefix [0, Cap).
//
// The piece is detached from the occupancy index for the duration, so
// the per-point free sets are plain complements of the occ rows.
func (ctx *Context) recolorPiece(i, c int, crossingOnly bool) error {
	x := ctx.Pieces[i]
	ctx.touchVar(x.Var)
	pts := x.Points.Elems(ctx.ptsScratch[:0])
	ctx.ptsScratch = pts
	cr := ctx.A.Crossings[x.Var]
	ctx.detach(i)

	occW := ctx.occW
	if need := len(pts) * occW; cap(ctx.freeScratch) < need {
		ctx.freeScratch = make([]uint64, need)
	}
	freeAt := ctx.freeScratch[:len(pts)*occW]
	if cap(ctx.freqScratch) < ctx.Size {
		ctx.freqScratch = make([]int, ctx.Size)
	}
	freq := ctx.freqScratch[:ctx.Size]
	for k := range freq {
		freq[k] = 0
	}
	banWord, banBit := c>>6, uint64(1)<<(uint(c)&63)

	// freeAt row k: colors usable at pts[k], as a word mask.
	for k, p := range pts {
		row := ctx.occRow(p)
		fr := freeAt[k*occW : (k+1)*occW]
		isCross := cr != nil && cr.Has(p)
		limit := ctx.Size
		if isCross {
			limit = ctx.Cap
		}
		for j := 0; j < occW; j++ {
			fr[j] = ^row[j] & wordMask(j, limit)
		}
		if !crossingOnly || isCross {
			fr[banWord] &^= banBit
		}
		for j := 0; j < occW; j++ {
			w := fr[j]
			for w != 0 { //lint:invariant w &= w-1 clears one set bit per iteration of a finite word
				freq[j<<6+bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
	}

	// Wholesale recolor: a color (other than c) free everywhere —
	// the AND over all per-point free rows.
	if cap(ctx.accScratch) < occW {
		ctx.accScratch = make([]uint64, occW)
	}
	acc := ctx.accScratch[:occW]
	for j := range acc {
		acc[j] = ^uint64(0)
	}
	for k := range pts {
		fr := freeAt[k*occW : (k+1)*occW]
		for j := 0; j < occW; j++ {
			acc[j] &= fr[j]
		}
	}
	acc[banWord] &^= banBit
	for j := 0; j < occW; j++ {
		if acc[j] != 0 {
			x.Color = j<<6 + bits.TrailingZeros64(acc[j])
			ctx.attach(i)
			return nil
		}
	}

	// Neighbor-recolor heuristic (paper Fig. 7.b): if some candidate
	// color is blocked by exactly one piece, and that blocker can itself
	// move to a different color for free, displace it and take the color —
	// still zero inserted moves.
	if ctx.tryDisplace(i, c, cr != nil && cr.Intersects(x.Points)) {
		return nil
	}

	// Split: assign a color per point, extending the current run while
	// possible and preferring globally-often-free colors at run starts.
	if cap(ctx.asgScratch) < len(pts) {
		ctx.asgScratch = make([]int, len(pts))
	}
	assign := ctx.asgScratch[:len(pts)]
	cur := -1
	for k := range pts {
		fr := freeAt[k*occW : (k+1)*occW]
		if cur >= 0 && fr[cur>>6]&(1<<(uint(cur)&63)) != 0 {
			assign[k] = cur
			continue
		}
		best, bestFreq := -1, -1
		for j := 0; j < occW; j++ {
			w := fr[j]
			for w != 0 { //lint:invariant w &= w-1 clears one set bit per iteration of a finite word
				col := j<<6 + bits.TrailingZeros64(w)
				if freq[col] > bestFreq {
					best, bestFreq = col, freq[col]
				}
				w &= w - 1
			}
		}
		if best < 0 {
			// Dead end. At a CSB-crossing point this can happen even
			// within the paper's bounds when an *internal* piece squats
			// on a private-capable color; evict it to a spare color. In
			// demote mode (crossingOnly) the banned color stays in the
			// palette as a shared color, so the squatter may take it.
			spareBan := c
			if crossingOnly {
				spareBan = -1
			}
			best = ctx.evictSquatter(x, pts[k], spareBan)
			if best < 0 {
				return errInfeasible{fmt.Sprintf(
					"no color for v%d at point %d (cap=%d size=%d banned=%d)",
					x.Var, pts[k], ctx.Cap, ctx.Size, c)}
			}
		}
		cur = best
		assign[k] = cur
	}

	// Rebuild: one piece per color used, ascending color order; the
	// lowest color reuses piece x in place.
	cols := ctx.idxScratch[:0]
	for k := range pts {
		col := int32(assign[k])
		found := false
		for _, seen := range cols {
			if seen == col {
				found = true
				break
			}
		}
		if !found {
			cols = append(cols, col)
		}
	}
	ctx.idxScratch = cols
	sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
	first := int(cols[0])
	x.Color = first
	x.Points.Clear()
	for k, p := range pts {
		if assign[k] == first {
			x.Points.Add(p)
		}
	}
	ctx.attach(i) // also restores pieceOf entries already pointing at i
	for _, colv := range cols[1:] {
		col := int(colv)
		s := bitset.New(ctx.np)
		for k, p := range pts {
			if assign[k] == col {
				s.Add(p)
			}
		}
		ctx.addPiece(&Piece{Var: x.Var, Color: col, Points: s})
	}
	return nil
}

// evictSquatter frees a private-capable color for crossing piece x at its
// crossing point p: it finds a co-live piece y that does not itself cross
// p but occupies a color g < Cap, and a spare color h free at p, then
// splits y's point p off into a fresh piece colored h. Returns the freed
// color g, or -1 if no eviction is possible. The extra moves this costs
// are picked up by MoveCost (and usually removed again by coalesce when a
// cheaper candidate color wins). x must be detached.
func (ctx *Context) evictSquatter(x *Piece, p, banned int) int {
	cr := ctx.A.Crossings[x.Var]
	if cr == nil || !cr.Has(p) {
		return -1
	}
	// Spare color h: unused at p by anyone (x is detached, so the occ row
	// holds exactly the other pieces' colors).
	row := ctx.occRow(p)
	h := -1
	for j := 0; j < ctx.occW && h < 0; j++ {
		w := ^row[j] & wordMask(j, ctx.Size)
		if banned >= 0 && j == banned>>6 {
			w &^= 1 << (uint(banned) & 63)
		}
		if w != 0 {
			h = j<<6 + bits.TrailingZeros64(w)
		}
	}
	if h < 0 {
		return -1
	}
	// Squatter y: co-live at p, not crossing p, on a private color !=
	// banned — first match in ascending variable order.
	g, victimIdx := -1, -1
	at := ctx.A.Live.At[p]
	for v := at.NextSet(0); v >= 0; v = at.NextSet(v + 1) {
		if v == x.Var {
			continue
		}
		iy := ctx.PieceAt(v, p)
		if iy < 0 {
			continue
		}
		y := ctx.Pieces[iy]
		if y.Color >= ctx.Cap || y.Color == banned {
			continue
		}
		if cry := ctx.A.Crossings[v]; cry != nil && cry.Has(p) {
			continue // y legitimately needs a private color here
		}
		g, victimIdx = y.Color, iy
		break
	}
	if g < 0 {
		return -1
	}
	victim := ctx.Pieces[victimIdx]
	ctx.touchVar(victim.Var)
	// Split point p off victim onto color h.
	victim.Points.Remove(p)
	if victim.Points.Empty() {
		// Single-point piece: just recolor it in place.
		victim.Points.Add(p)
		ctx.recolorWhole(victimIdx, h)
		return g
	}
	ctx.occClear(p, g)
	ctx.addPiece(&Piece{Var: victim.Var, Color: h, Points: bitsetWith(ctx.np, p)})
	return g
}

// tryDisplace attempts the paper's neighbor-recolor heuristic for piece
// i = x (leaving banned color c): find a candidate color c' whose only
// blocker among x's co-live pieces is a single piece q, where q can
// wholesale-move to yet another color; displace q, give x color c'. Both
// recolorings are whole-piece, so the move cost stays zero. x must be
// detached; on success it is reattached with its new color.
func (ctx *Context) tryDisplace(i, c int, isCrossing bool) bool {
	x := ctx.Pieces[i]
	limit := ctx.Size
	if isCrossing {
		limit = ctx.Cap
	}
	for cand := 0; cand < limit; cand++ {
		if cand == c || cand == x.Color {
			continue
		}
		// Find the blockers of cand over x's points: pieces holding cand
		// that intersect x.
		qi, count := -1, 0
		for _, idx := range ctx.byColor[cand] {
			y := ctx.Pieces[idx]
			if y.Var == x.Var {
				continue
			}
			if y.Points.Intersects(x.Points) {
				count++
				if count > 1 {
					break
				}
				qi = int(idx)
			}
		}
		if count != 1 {
			continue
		}
		q := ctx.Pieces[qi]
		if q.Color == c {
			continue // q is itself being vacated; let its own turn handle it
		}
		// Find a free wholesale color for q (not c, not cand, and x's
		// current color does not count as free either: x still holds it
		// until we reassign below — but x is moving to cand, so x's old
		// color IS usable by q as long as no other piece blocks it...
		// keep it conservative and exclude it).
		qLimit := ctx.Size
		if ctx.crosses(q) {
			qLimit = ctx.Cap
		}
		for qc := 0; qc < qLimit; qc++ {
			if qc == c || qc == cand || qc == q.Color || qc == x.Color {
				continue
			}
			if ctx.canTake(q, qc) {
				ctx.touchVar(q.Var)
				ctx.recolorWhole(qi, qc)
				x.Color = cand
				ctx.attach(i)
				return true
			}
		}
	}
	return false
}

func bitsetWith(n, p int) bitset.Set {
	s := bitset.New(n)
	s.Add(p)
	return s
}

// coalesce is the paper's "eliminate unnecessary moves" pass: repeatedly
// merge a split piece into a sibling piece of the same variable whenever
// the sibling's color is legal across the whole piece. Merging never
// increases the move count and strictly reduces the piece count, so the
// loop terminates. Variables are visited in ascending order (the map
// iteration this replaces left the merge order to chance).
func (ctx *Context) coalesce() {
	nv := ctx.A.NumVars
	if cap(ctx.offScratch) < nv+1 {
		ctx.offScratch = make([]int32, nv+1)
	}
	off := ctx.offScratch[:nv+1]
	for k := range off {
		off[k] = 0
	}
	for _, x := range ctx.Pieces {
		off[x.Var+1]++
	}
	multi := false
	for v := 0; v < nv; v++ {
		if off[v+1] > 1 {
			multi = true
		}
		off[v+1] += off[v]
	}
	if !multi {
		return // every variable is in one piece: nothing to merge
	}
	if cap(ctx.idxScratch) < len(ctx.Pieces) {
		ctx.idxScratch = make([]int32, len(ctx.Pieces))
	}
	flat := ctx.idxScratch[:len(ctx.Pieces)]
	// Bucket piece indices by var; ascending index within each bucket.
	cursors := ctx.freqScratch
	if cap(cursors) < nv {
		cursors = make([]int, nv)
		ctx.freqScratch = cursors
	}
	cursors = cursors[:nv]
	for v := 0; v < nv; v++ {
		cursors[v] = int(off[v])
	}
	for i, x := range ctx.Pieces {
		flat[cursors[x.Var]] = int32(i)
		cursors[x.Var]++
	}

	changedAny := false
	for v := 0; v < nv; v++ {
		idxs := flat[off[v]:off[v+1]]
		if len(idxs) < 2 {
			continue
		}
		for again := true; again; { //lint:invariant fixpoint loop: again is only set when two pieces coalesce, and the piece count is finite and strictly decreasing
			again = false
			for _, i32 := range idxs {
				i := int(i32)
				x := ctx.Pieces[i]
				if x == nil {
					continue
				}
				for _, j32 := range idxs {
					j := int(j32)
					y := ctx.Pieces[j]
					if y == nil || i == j {
						continue
					}
					if x.Color != y.Color && !ctx.canTake(x, y.Color) {
						continue
					}
					// Merge x into y.
					if x.Color != y.Color {
						ctx.touchVar(v)
						for p := x.Points.NextSet(0); p >= 0; p = x.Points.NextSet(p + 1) {
							ctx.occClear(p, x.Color)
							ctx.occSet(p, y.Color)
						}
					}
					ctx.byColorRemove(x.Color, int32(i))
					y.Points.Or(x.Points)
					base := v * ctx.np
					for pt := x.Points.NextSet(0); pt >= 0; pt = x.Points.NextSet(pt + 1) {
						ctx.pieceOf[base+pt] = int32(j)
					}
					ctx.Pieces[i] = nil
					changedAny, again = true, true
					break
				}
			}
		}
	}
	if changedAny {
		kept := ctx.Pieces[:0]
		for _, x := range ctx.Pieces {
			if x != nil {
				kept = append(kept, x)
			}
		}
		// Clear the compacted-over tail: copyFrom reuses the backing array's
		// spare slots as scratch Piece structs, and a stale pointer here
		// would alias a live slot shifted down during compaction.
		tail := ctx.Pieces[len(kept):]
		for i := range tail {
			tail[i] = nil
		}
		ctx.Pieces = kept
		ctx.rebuildPieceIndex()
	}
}

// canTake reports whether piece x could legally adopt color col: no piece
// of another variable holding col overlaps x.
func (ctx *Context) canTake(x *Piece, col int) bool {
	if col < 0 || col >= ctx.Size {
		return false
	}
	if col >= ctx.Cap && ctx.crosses(x) {
		return false
	}
	for _, idx := range ctx.byColor[col] {
		y := ctx.Pieces[idx]
		if y.Var != x.Var && y.Points.Intersects(x.Points) {
			return false
		}
	}
	return true
}
